"""Deterministic fault injection: rehearse every failure the runner heals.

The resilient runner's recovery paths (retry, quarantine, checkpoint
recovery) are worthless untested, and real failures are rare and
unrepeatable.  :class:`FaultInjector` makes them cheap and exactly
reproducible: code under test calls :meth:`FaultInjector.check` at
labelled *sites* ("behavior.evaluate", "io.write", ...) and the injector
decides -- from a seeded RNG and/or an explicit position list -- whether
that particular call raises.  Same seed, same configuration, same call
sequence => the same faults, every run; this is what lets the test suite
assert byte-identical resume after a mid-campaign crash.

Two failure flavours mirror the two things that go wrong in a long
campaign:

* :class:`InjectedFault` (an ``Exception``) -- a *transient or per-site*
  error, e.g. a behavioural evaluation blowing up on one pathological
  site.  The runner retries it and, if persistent, quarantines the site.
* :class:`InjectedCrash` (a ``BaseException``) -- the process dying:
  OOM-kill, power loss, ``kill -9``.  Nothing may catch it short of the
  test harness; surviving it is the checkpoint's job.

Usage::

    inj = FaultInjector(seed=7, rates={"behavior.evaluate": 0.01},
                        crash_positions={"checkpoint.unit": {3}})
    model = ChaosBehaviorModel(real_model, inj)
    runner = CampaignRunner(..., behavior=model,
                            fault_hook=inj.check)
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import Counter
from collections.abc import Iterable, Mapping

import numpy as np

from repro.defects.models import Defect
from repro.stress import StressCondition

#: Worker-level chaos site: the worker process dies via ``os._exit``
#: (no cleanup, no exception -- the parent sees ``BrokenProcessPool``).
WORKER_EXIT_SITE = "worker.exit"

#: Worker-level chaos site: the worker stalls in ``time.sleep`` long
#: enough to trip the supervisor's parent-side chunk deadline.
WORKER_HANG_SITE = "worker.hang"

_WORKER_SITES = (WORKER_EXIT_SITE, WORKER_HANG_SITE)

#: Exit status of an injected ``worker.exit`` death (recognisable in
#: process tables and soak logs).
WORKER_EXIT_STATUS = 17


class InjectedFault(RuntimeError):
    """A deliberately injected *recoverable* failure (retry/quarantine)."""


class InjectedCrash(BaseException):
    """A deliberately injected process death.

    Derives from ``BaseException`` so no ``except Exception`` recovery
    path can swallow it -- exactly like SIGKILL, which the production
    code never sees at all.
    """


class FaultInjector:
    """Seeded, position-addressable fault source.

    Args:
        seed: RNG seed; the stochastic stream is deterministic given
            the seed and the per-site call order.
        rates: Map of site label -> probability that a call at that
            site raises :class:`InjectedFault`.
        positions: Map of site label -> 0-based call indices that raise
            :class:`InjectedFault` unconditionally (deterministic
            placement, independent of the RNG).
        crash_positions: Like ``positions`` but raising
            :class:`InjectedCrash` -- the simulated ``kill -9``.
        worker_faults: Worker-level chaos: map of site label
            (:data:`WORKER_EXIT_SITE` or :data:`WORKER_HANG_SITE`) ->
            {unit id -> times}.  :meth:`check_worker`, probed once per
            (unit, dispatch attempt) by the pool executor, fires while
            ``attempt < times`` -- so a unit with ``times=1`` dies on
            its first dispatch and heals on redispatch, while a large
            ``times`` models a genuine poison unit.  Deliberately
            keyed on (unit, attempt) rather than call order so the
            decision is identical in every process that probes it.
        hang_seconds: Stall duration of an injected ``worker.hang``
            (must comfortably exceed the supervisor's chunk deadline).
        scope_by_unit: Key the per-site RNG substreams by
            (site, current unit) instead of site alone.  Rate-based
            faults then become a pure function of (seed, site, unit,
            per-unit call order) -- the property that makes serial and
            multi-worker chaos runs draw identical fault patterns.
            Off by default: global call-order streams keep existing
            position-based configurations meaningful.

    Each site keeps an independent RNG substream (seeded from
    ``seed`` + the site label) so adding probes at one site never
    perturbs the fault pattern at another.
    """

    def __init__(self, seed: int = 0,
                 rates: Mapping[str, float] | None = None,
                 positions: Mapping[str, Iterable[int]] | None = None,
                 crash_positions: Mapping[str, Iterable[int]] | None = None,
                 worker_faults: Mapping[str, Mapping[str, int]] | None = None,
                 hang_seconds: float = 60.0,
                 scope_by_unit: bool = False,
                 ) -> None:
        self.seed = seed
        self.rates = dict(rates or {})
        for site, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"rate for site {site!r} must be in [0, 1], got {rate}")
        self.positions = {s: set(p) for s, p in (positions or {}).items()}
        self.crash_positions = {
            s: set(p) for s, p in (crash_positions or {}).items()}
        self.worker_faults = {
            site: dict(table)
            for site, table in (worker_faults or {}).items()}
        for site in self.worker_faults:
            if site not in _WORKER_SITES:
                raise ValueError(
                    f"unknown worker-fault site {site!r}; choices: "
                    f"{', '.join(_WORKER_SITES)}")
        if hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        self.hang_seconds = hang_seconds
        self.scope_by_unit = scope_by_unit
        self.calls: Counter[str] = Counter()
        self.injected: Counter[str] = Counter()
        self._rngs: dict[tuple[str, str | None],
                         np.random.Generator] = {}
        self._scope: str | None = None

    # ------------------------------------------------------------------
    def _rng(self, site: str) -> np.random.Generator:
        key = (site, self._scope)
        if key not in self._rngs:
            # Stable site key: str.__hash__ is salted per process, which
            # would desynchronise "same seed, same faults" across runs.
            site_key = int.from_bytes(
                hashlib.sha256(site.encode("utf-8")).digest()[:4], "big")
            spawn_key: tuple[int, ...] = (site_key,)
            if self._scope is not None:
                scope_key = int.from_bytes(
                    hashlib.sha256(
                        self._scope.encode("utf-8")).digest()[:4], "big")
                spawn_key = (site_key, scope_key)
            self._rngs[key] = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed,
                                       spawn_key=spawn_key))
        return self._rngs[key]

    def begin_unit(self, unit_id: str) -> None:
        """Scope subsequent RNG draws to ``unit_id``.

        Called by :class:`~repro.runner.evaluate.UnitEvaluator` at the
        start of every unit.  A no-op unless ``scope_by_unit`` was
        requested, so default configurations keep their global
        call-order streams.
        """
        if self.scope_by_unit:
            self._scope = unit_id

    def check(self, site: str) -> None:
        """Account one call at ``site``; raise if a fault is scheduled.

        Raises:
            InjectedCrash: the call index is in ``crash_positions``.
            InjectedFault: the call index is in ``positions``, or the
                site's RNG draw lands under its configured rate.
        """
        index = self.calls[site]
        self.calls[site] += 1
        if index in self.crash_positions.get(site, ()):
            self.injected[site] += 1
            raise InjectedCrash(f"injected crash at {site}[{index}]")
        hit = index in self.positions.get(site, ())
        rate = self.rates.get(site, 0.0)
        if rate > 0.0 and float(self._rng(site).random()) < rate:
            hit = True
        if hit:
            self.injected[site] += 1
            raise InjectedFault(f"injected fault at {site}[{index}]")

    def check_worker(self, unit_key: str, attempt: int,
                     in_worker: bool = True) -> None:
        """Probe the worker-level chaos sites for one dispatched unit.

        Called once per (unit, dispatch attempt) -- by the pool worker
        just before evaluating the unit, and by the supervisor before a
        serial in-parent retry.  The decision is a pure function of
        (unit, attempt, configured budget), so every process that
        probes the same dispatch agrees without any state exchange.

        Args:
            unit_key: The unit's stable id.
            attempt: 0-based dispatch attempt of the unit's chunk.
            in_worker: True inside a pool worker -- the injection then
                *is* the failure (``os._exit`` / a long sleep).  False
                in the parent, where dying for real would kill the
                campaign; the injection surfaces as
                :class:`InjectedCrash` instead, which the supervisor's
                poison-unit guard quarantines.

        Raises:
            InjectedCrash: a fault is scheduled and ``in_worker`` is
                False.
        """
        for site in _WORKER_SITES:
            times = self.worker_faults.get(site, {}).get(unit_key)
            if times is None:
                continue
            self.calls[site] += 1
            if attempt >= times:
                continue
            self.injected[site] += 1
            if not in_worker:
                raise InjectedCrash(
                    f"injected {site} for {unit_key} still firing on "
                    f"attempt {attempt} (in-parent retry)")
            if site == WORKER_EXIT_SITE:
                os._exit(WORKER_EXIT_STATUS)
            time.sleep(self.hang_seconds)

    # ------------------------------------------------------------------
    # Counters (merged back from workers -- see docs/robustness.md)
    # ------------------------------------------------------------------
    def counter_snapshot(self) -> dict[str, dict[str, int]]:
        """Copy of the call/injection counters, for later deltas."""
        return {"calls": dict(self.calls),
                "injected": dict(self.injected)}

    def counters_since(self, snapshot: dict[str, dict[str, int]],
                       ) -> dict[str, dict[str, int]]:
        """Per-site counter growth since ``snapshot``.

        Returns:
            ``{site: {"calls": n, "injected": m}}`` restricted to
            sites that moved -- the compact delta a
            :class:`~repro.runner.evaluate.UnitOutcome` carries back
            from a worker process.
        """
        delta: dict[str, dict[str, int]] = {}
        for site in sorted(set(self.calls) | set(self.injected)):
            calls = self.calls[site] - snapshot["calls"].get(site, 0)
            injected = (self.injected[site]
                        - snapshot["injected"].get(site, 0))
            if calls or injected:
                delta[site] = {"calls": calls, "injected": injected}
        return delta

    def merge_counts(self, delta: Mapping[str, Mapping[str, int]]) -> None:
        """Fold a worker's per-unit counter delta into this injector.

        The pool executors call this at the in-order effect point for
        every outcome a worker sends back; without it the fork-copied
        worker counters are lost and :meth:`stats` undercounts under
        ``workers > 1``.
        """
        for site, counts in delta.items():
            self.calls[site] += counts.get("calls", 0)
            self.injected[site] += counts.get("injected", 0)

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-site call and injection counters (for reports/tests)."""
        return {
            site: {"calls": self.calls[site],
                   "injected": self.injected[site]}
            for site in sorted(set(self.calls) | set(self.injected))
        }


class ChaosBehaviorModel:
    """Behaviour-model proxy that fires the injector before evaluating.

    Wraps any object with the :class:`~repro.defects.behavior.
    DefectBehaviorModel` duck interface; the campaign only calls
    ``fails_condition``, so that is the probed surface.  Site label:
    ``behavior.evaluate``.

    Declines the vectorised ``evaluate_batch`` capability even when the
    wrapped model offers it: a batch call answers a whole site x R
    grid without touching ``fails_condition``, which would skip the
    injector's per-site probes and change the fault pattern.  The
    class attribute below shadows ``__getattr__`` delegation, so batch
    evaluators see ``None`` and take the all-scalar fallback --
    chaos campaigns probe site-for-site exactly like
    ``strategy="exact"``.
    """

    SITE = "behavior.evaluate"
    evaluate_batch = None

    def __init__(self, inner, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    def fails_condition(self, defect: Defect,
                        condition: StressCondition) -> bool:
        """Probe the injector, then delegate to the wrapped model."""
        self.injector.check(self.SITE)
        return self.inner.fails_condition(defect, condition)

    def __getattr__(self, name: str):
        # Guard against the unpickling window where __dict__ is still
        # empty: delegating "inner" then would recurse forever (and kill
        # pool workers receiving a pickled chaos-wrapped campaign).
        if "inner" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.inner, name)
