"""Deterministic fault injection: rehearse every failure the runner heals.

The resilient runner's recovery paths (retry, quarantine, checkpoint
recovery) are worthless untested, and real failures are rare and
unrepeatable.  :class:`FaultInjector` makes them cheap and exactly
reproducible: code under test calls :meth:`FaultInjector.check` at
labelled *sites* ("behavior.evaluate", "io.write", ...) and the injector
decides -- from a seeded RNG and/or an explicit position list -- whether
that particular call raises.  Same seed, same configuration, same call
sequence => the same faults, every run; this is what lets the test suite
assert byte-identical resume after a mid-campaign crash.

Two failure flavours mirror the two things that go wrong in a long
campaign:

* :class:`InjectedFault` (an ``Exception``) -- a *transient or per-site*
  error, e.g. a behavioural evaluation blowing up on one pathological
  site.  The runner retries it and, if persistent, quarantines the site.
* :class:`InjectedCrash` (a ``BaseException``) -- the process dying:
  OOM-kill, power loss, ``kill -9``.  Nothing may catch it short of the
  test harness; surviving it is the checkpoint's job.

Usage::

    inj = FaultInjector(seed=7, rates={"behavior.evaluate": 0.01},
                        crash_positions={"checkpoint.unit": {3}})
    model = ChaosBehaviorModel(real_model, inj)
    runner = CampaignRunner(..., behavior=model,
                            fault_hook=inj.check)
"""

from __future__ import annotations

import hashlib
from collections import Counter
from collections.abc import Iterable, Mapping

import numpy as np

from repro.defects.models import Defect
from repro.stress import StressCondition


class InjectedFault(RuntimeError):
    """A deliberately injected *recoverable* failure (retry/quarantine)."""


class InjectedCrash(BaseException):
    """A deliberately injected process death.

    Derives from ``BaseException`` so no ``except Exception`` recovery
    path can swallow it -- exactly like SIGKILL, which the production
    code never sees at all.
    """


class FaultInjector:
    """Seeded, position-addressable fault source.

    Args:
        seed: RNG seed; the stochastic stream is deterministic given
            the seed and the per-site call order.
        rates: Map of site label -> probability that a call at that
            site raises :class:`InjectedFault`.
        positions: Map of site label -> 0-based call indices that raise
            :class:`InjectedFault` unconditionally (deterministic
            placement, independent of the RNG).
        crash_positions: Like ``positions`` but raising
            :class:`InjectedCrash` -- the simulated ``kill -9``.

    Each site keeps an independent RNG substream (seeded from
    ``seed`` + the site label) so adding probes at one site never
    perturbs the fault pattern at another.
    """

    def __init__(self, seed: int = 0,
                 rates: Mapping[str, float] | None = None,
                 positions: Mapping[str, Iterable[int]] | None = None,
                 crash_positions: Mapping[str, Iterable[int]] | None = None,
                 ) -> None:
        self.seed = seed
        self.rates = dict(rates or {})
        for site, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"rate for site {site!r} must be in [0, 1], got {rate}")
        self.positions = {s: set(p) for s, p in (positions or {}).items()}
        self.crash_positions = {
            s: set(p) for s, p in (crash_positions or {}).items()}
        self.calls: Counter[str] = Counter()
        self.injected: Counter[str] = Counter()
        self._rngs: dict[str, np.random.Generator] = {}

    # ------------------------------------------------------------------
    def _rng(self, site: str) -> np.random.Generator:
        if site not in self._rngs:
            # Stable site key: str.__hash__ is salted per process, which
            # would desynchronise "same seed, same faults" across runs.
            site_key = int.from_bytes(
                hashlib.sha256(site.encode("utf-8")).digest()[:4], "big")
            self._rngs[site] = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed,
                                       spawn_key=(site_key,)))
        return self._rngs[site]

    def check(self, site: str) -> None:
        """Account one call at ``site``; raise if a fault is scheduled.

        Raises:
            InjectedCrash: the call index is in ``crash_positions``.
            InjectedFault: the call index is in ``positions``, or the
                site's RNG draw lands under its configured rate.
        """
        index = self.calls[site]
        self.calls[site] += 1
        if index in self.crash_positions.get(site, ()):
            self.injected[site] += 1
            raise InjectedCrash(f"injected crash at {site}[{index}]")
        hit = index in self.positions.get(site, ())
        rate = self.rates.get(site, 0.0)
        if rate > 0.0 and float(self._rng(site).random()) < rate:
            hit = True
        if hit:
            self.injected[site] += 1
            raise InjectedFault(f"injected fault at {site}[{index}]")

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-site call and injection counters (for reports/tests)."""
        return {
            site: {"calls": self.calls[site],
                   "injected": self.injected[site]}
            for site in sorted(set(self.calls) | set(self.injected))
        }


class ChaosBehaviorModel:
    """Behaviour-model proxy that fires the injector before evaluating.

    Wraps any object with the :class:`~repro.defects.behavior.
    DefectBehaviorModel` duck interface; the campaign only calls
    ``fails_condition``, so that is the probed surface.  Site label:
    ``behavior.evaluate``.
    """

    SITE = "behavior.evaluate"

    def __init__(self, inner, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    def fails_condition(self, defect: Defect,
                        condition: StressCondition) -> bool:
        """Probe the injector, then delegate to the wrapped model."""
        self.injector.check(self.SITE)
        return self.inner.fails_condition(defect, condition)

    def __getattr__(self, name: str):
        # Guard against the unpickling window where __dict__ is still
        # empty: delegating "inner" then would recurse forever (and kill
        # pool workers receiving a pickled chaos-wrapped campaign).
        if "inner" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.inner, name)
