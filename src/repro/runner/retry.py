"""Retry with exponential backoff, deterministic jitter and deadlines.

Long campaigns treat a failing evaluation as an *input*, not a verdict:
transient failures (a solver that needed a luckier starting point, an
injected chaos fault, a flaky I/O layer) deserve another attempt;
persistent ones must stop burning the unit's time budget and move to
quarantine.  :class:`RetryPolicy` encodes that contract.

Jitter is **deterministic**: derived by hashing (policy seed, call key,
attempt) rather than sampled from shared global randomness.  Two
properties follow, both load-bearing:

* a resumed campaign re-executes a unit with exactly the delays the
  first run would have used -- resume stays reproducible;
* concurrent units never contend for an RNG, yet their delays are still
  decorrelated (the usual purpose of jitter).
"""

from __future__ import annotations

import hashlib
import struct
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TypeVar

T = TypeVar("T")


class RetryExhaustedError(RuntimeError):
    """All attempts failed; carries the full failure history.

    Attributes:
        key: The call key the policy was executed under.
        attempts: Number of attempts actually made.
        causes: One exception per attempt, oldest first (the last is
            also the ``__cause__``).
    """

    def __init__(self, key: str, causes: Sequence[BaseException],
                 deadline_hit: bool = False) -> None:
        self.key = key
        self.attempts = len(causes)
        self.causes = list(causes)
        self.deadline_hit = deadline_hit
        last = causes[-1] if causes else None
        detail = f": {type(last).__name__}: {last}" if last else ""
        reason = "deadline exceeded" if deadline_hit else "gave up"
        super().__init__(
            f"{key}: {reason} after {self.attempts} attempt(s){detail}")


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for one unit of work.

    Attributes:
        max_attempts: Total tries (1 = no retry).
        base_delay: Sleep before the first retry (seconds).
        backoff: Multiplier per further retry (exponential).
        max_delay: Ceiling on any single sleep.
        jitter: Fraction of the nominal delay added/subtracted
            deterministically (0.2 -> final delay in [0.8, 1.2] x
            nominal).
        deadline: Optional wall-clock budget (seconds) for the whole
            attempt sequence; checked before each retry sleep.
        retryable: Exception types worth another attempt.  Anything
            else propagates immediately (``BaseException`` crashes in
            particular are never caught).
        seed: Mixed into the jitter hash so independent campaigns
            decorrelate.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.2
    deadline: float | None = None
    retryable: tuple[type[Exception], ...] = (Exception,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")

    # ------------------------------------------------------------------
    def _jitter_fraction(self, key: str, attempt: int) -> float:
        """Deterministic value in [-1, 1) from (seed, key, attempt)."""
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")).digest()
        (word,) = struct.unpack(">Q", digest[:8])
        return 2.0 * (word / 2.0**64) - 1.0

    def delay_for(self, key: str, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based) of ``key``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        nominal = min(self.base_delay * self.backoff ** (attempt - 1),
                      self.max_delay)
        jittered = nominal * (1.0 + self.jitter
                              * self._jitter_fraction(key, attempt))
        return max(0.0, min(jittered, self.max_delay))

    def schedule(self, key: str) -> list[float]:
        """The full retry-delay schedule for a key (diagnostics/tests)."""
        return [self.delay_for(key, a)
                for a in range(1, self.max_attempts)]


#: Policy for fast in-memory evaluations: quick retries, tiny delays.
DEFAULT_UNIT_POLICY = RetryPolicy(max_attempts=3, base_delay=0.0,
                                  jitter=0.0)


@dataclass
class RetryStats:
    """Counters accumulated by :func:`run_with_retry` callers.

    Attributes:
        calls: Number of retry-wrapped calls started.
        retries: Number of additional attempts made after a failure.
        exhausted: Calls that failed every attempt (or hit a deadline).
        errors: Human-readable ``key: ExcType: message`` strings, one
            per failed attempt, oldest first.  Bounded: the list keeps
            the first :data:`ERRORS_HEAD` and the most recent
            :data:`ERRORS_TAIL` messages; anything between is dropped
            and counted in ``errors_elided``, so a chaos soak's
            millions of injected faults cannot balloon the campaign
            result (or anything derived from it).  Under the cap the
            list is byte-identical to the unbounded behaviour.
        errors_elided: Messages dropped by the cap (0 under the cap).
    """

    #: Oldest error messages always retained.
    ERRORS_HEAD = 8
    #: Most recent error messages always retained.
    ERRORS_TAIL = 8

    calls: int = 0
    retries: int = 0
    exhausted: int = 0
    errors: list[str] = field(default_factory=list)
    errors_elided: int = 0

    def record_error(self, message: str) -> None:
        """Append one failed-attempt message, enforcing the cap.

        Keeps the first ``ERRORS_HEAD`` and last ``ERRORS_TAIL``
        messages; once full, the oldest *tail* message is dropped (and
        counted in ``errors_elided``) to make room, so the head stays
        frozen and the tail slides.
        """
        if len(self.errors) < self.ERRORS_HEAD + self.ERRORS_TAIL:
            self.errors.append(message)
            return
        del self.errors[self.ERRORS_HEAD]
        self.errors.append(message)
        self.errors_elided += 1

    def error_log(self) -> list[str]:
        """The error messages, with an elision marker when capped.

        Returns:
            ``errors`` verbatim under the cap; otherwise the head,
            a ``... N error(s) elided ...`` marker, then the tail.
        """
        if not self.errors_elided:
            return list(self.errors)
        return (self.errors[:self.ERRORS_HEAD]
                + [f"... {self.errors_elided} error(s) elided ..."]
                + self.errors[self.ERRORS_HEAD:])

    def merge(self, other: "RetryStats") -> None:
        """Fold another counter set into this one (in call order).

        Used by the campaign runner to combine per-unit counters --
        accumulated independently per unit (and per worker process)
        -- into one campaign-wide tally whose totals and error order
        match a serial run.  The retained messages are replayed through
        :meth:`record_error`, so the merged ledger honours the same cap
        a serial accumulation would.

        Args:
            other: Counters to add; left unmodified.
        """
        self.calls += other.calls
        self.retries += other.retries
        self.exhausted += other.exhausted
        self.errors_elided += other.errors_elided
        for message in other.errors:
            self.record_error(message)


def run_with_retry(fn: Callable[[], T], policy: RetryPolicy, key: str,
                   sleep: Callable[[float], None] = time.sleep,
                   clock: Callable[[], float] = time.monotonic,
                   stats: RetryStats | None = None) -> T:
    """Execute ``fn`` under ``policy``; return its value or raise.

    Args:
        fn: Zero-argument callable (bind arguments with a closure).
        policy: Retry policy.
        key: Stable identity of this call -- feeds the deterministic
            jitter and appears in error messages.
        sleep: Injectable sleep (tests pass a no-op or recorder).
        clock: Injectable monotonic clock for the deadline check.
        stats: Optional counters to accumulate into.

    Raises:
        RetryExhaustedError: every attempt failed with a retryable
            exception, or the deadline expired between attempts.
        BaseException: a non-retryable exception propagates as-is from
            the failing attempt.
    """
    if stats is not None:
        stats.calls += 1
    start = clock()
    causes: list[BaseException] = []
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except policy.retryable as exc:
            causes.append(exc)
            if stats is not None:
                stats.record_error(f"{key}: {type(exc).__name__}: {exc}")
            if attempt == policy.max_attempts:
                break
            delay = policy.delay_for(key, attempt)
            if (policy.deadline is not None
                    and clock() - start + delay > policy.deadline):
                if stats is not None:
                    stats.exhausted += 1
                raise RetryExhaustedError(key, causes,
                                          deadline_hit=True) from causes[-1]
            if stats is not None:
                stats.retries += 1
            if delay > 0.0:
                sleep(delay)
    if stats is not None:
        stats.exhausted += 1
    raise RetryExhaustedError(key, causes) from causes[-1]
