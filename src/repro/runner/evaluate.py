"""Per-unit evaluation: the shared core of serial and parallel execution.

One work unit -- a (kind, R, condition) cell of the campaign sweep --
is evaluated by sweeping the (seeded, deterministic) site population
through the behaviour model under a per-site retry policy, quarantining
sites that keep raising.  That loop used to live inside
:class:`~repro.runner.campaign.CampaignRunner`; it is factored out here
so the process-pool executor (:mod:`repro.perf.executor`) can run the
*identical* code in worker processes, which is the root of the
parallel-equals-serial determinism guarantee (``docs/performance.md``):

* the site population regenerates deterministically from the campaign
  seed in every process;
* the behaviour model is a pure function of (defect, condition);
* retry jitter is hashed from the per-site key, never drawn from a
  shared RNG;

so a unit's :class:`~repro.ifa.flow.CoverageRecord` is a pure function
of the unit itself, regardless of which process evaluates it or in what
order.

:class:`UnitOutcome` is also the unit of observability: it carries
everything the run journal (:mod:`repro.obs`) reports about a unit --
record, retry statistics, quarantine entries -- so events are emitted
once, parent-side, when the outcome is consumed, never from inside
evaluation.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.defects.models import Defect, DefectKind
from repro.ifa.flow import CoverageRecord
from repro.runner.retry import (
    DEFAULT_UNIT_POLICY,
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
    run_with_retry,
)
from repro.runner.units import WorkUnit


class UnitDeadlineExceeded(RuntimeError):
    """A work unit overran the runner's per-unit wall-clock budget.

    Deliberately fatal rather than silently skipping sites: skipping
    would make the emitted records depend on machine speed.  The
    checkpoint keeps every completed unit, so the campaign is resumable
    after the stall's cause is fixed.
    """


@dataclass
class UnitOutcome:
    """Everything one work unit's evaluation produced.

    Attributes:
        index: The unit's position in the campaign plan.
        unit_id: The unit's stable checkpoint key.
        record: The emitted coverage record.
        quarantine: Error-ledger entries for sites that exhausted the
            retry budget (in site order).
        stats: Retry counters accumulated while evaluating this unit.
        injections: Fault-injector counter growth attributable to this
            unit (``{site: {"calls": n, "injected": m}}``).  Empty
            outside chaos runs.  Worker processes fill it so the
            parent can merge the fork-copied injector counters back
            (:meth:`~repro.runner.chaos.FaultInjector.merge_counts`).
    """

    index: int
    unit_id: str
    record: CoverageRecord
    quarantine: list[dict[str, Any]] = field(default_factory=list)
    stats: RetryStats = field(default_factory=RetryStats)
    injections: dict[str, dict[str, int]] = field(default_factory=dict)


class UnitEvaluator:
    """Evaluate work units against one campaign's population and model.

    Stateless with respect to unit results (each call is independent);
    stateful only in its derived caches: the per-kind site population
    and the current (kind, R) resistance-variant list, both regenerated
    deterministically from the campaign seed.  One evaluator lives in
    the serial runner; one per worker process in the parallel executor.

    Args:
        campaign: The :class:`~repro.ifa.flow.IfaCampaign`-shaped
            object supplying site populations and the behaviour model.
        retry: Per-site retry policy (default: three fast attempts).
        unit_deadline: Optional wall-clock budget per unit (seconds);
            overrunning it raises :class:`UnitDeadlineExceeded`.
        sleep: Injectable sleep for the retry machinery.
        clock: Injectable monotonic clock for deadlines.
    """

    def __init__(self, campaign: Any, retry: RetryPolicy | None = None,
                 unit_deadline: float | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if unit_deadline is not None and unit_deadline <= 0:
            raise ValueError("unit_deadline must be positive")
        self.campaign = campaign
        self.retry = retry if retry is not None else DEFAULT_UNIT_POLICY
        self.unit_deadline = unit_deadline
        self.sleep = sleep
        self.clock = clock
        self._populations: dict[DefectKind, list[Defect]] = {}
        self._variants_key: tuple[DefectKind, float] | None = None
        self._variants: list[Defect] = []

    # ------------------------------------------------------------------
    def population(self, kind: DefectKind) -> list[Defect]:
        """The campaign's (cached) site population for one defect kind."""
        if kind not in self._populations:
            self._populations[kind] = (
                self.campaign.bridge_population()
                if kind is DefectKind.BRIDGE
                else self.campaign.open_population())
        return self._populations[kind]

    def variants_for(self, unit: WorkUnit) -> list[Defect]:
        """The population re-resistanced to the unit's sweep point.

        A single-slot cache keyed on (kind, R): plan order is
        resistance-major, so consecutive units reuse the variant list.
        """
        key = (unit.kind, unit.resistance)
        if key != self._variants_key:
            self._variants = [d.with_resistance(unit.resistance)
                              for d in self.population(unit.kind)]
            self._variants_key = key
        return self._variants

    # ------------------------------------------------------------------
    def evaluate(self, unit: WorkUnit) -> UnitOutcome:
        """Evaluate one unit; quarantine sites that keep raising.

        Args:
            unit: The (kind, R, condition) cell to evaluate.

        Returns:
            The unit's record, quarantine entries and retry counters.

        Raises:
            UnitDeadlineExceeded: the unit overran ``unit_deadline``.
        """
        variants = self.variants_for(unit)
        behavior = self.campaign.behavior
        cond = unit.condition
        # Chaos bookkeeping (duck-typed: absent outside chaos runs).
        # Scoping the injector to the unit and snapshotting its
        # counters here keeps injections a per-unit fact, so outcomes
        # can carry them across the process boundary.
        injector = getattr(behavior, "injector", None)
        if injector is not None and hasattr(injector, "begin_unit"):
            injector.begin_unit(unit.unit_id)
        snapshot = (injector.counter_snapshot()
                    if injector is not None
                    and hasattr(injector, "counter_snapshot") else None)
        stats = RetryStats()
        started = self.clock()
        detected = 0
        entries: list[dict[str, Any]] = []
        for site_index, defect in enumerate(variants):
            site_key = f"{unit.unit_id}#site{site_index}"
            try:
                if run_with_retry(
                        lambda d=defect: behavior.fails_condition(d, cond),
                        self.retry, site_key,
                        sleep=self.sleep, clock=self.clock, stats=stats):
                    detected += 1
            except RetryExhaustedError as exc:
                entries.append({
                    "unit_id": unit.unit_id,
                    "site_index": site_index,
                    "defect": str(defect),
                    "attempts": exc.attempts,
                    "error": f"{type(exc.causes[-1]).__name__}: "
                             f"{exc.causes[-1]}",
                    "deadline_hit": exc.deadline_hit,
                })
            if (self.unit_deadline is not None
                    and self.clock() - started > self.unit_deadline):
                raise UnitDeadlineExceeded(
                    f"{unit} exceeded its {self.unit_deadline:g}s budget "
                    f"after {site_index + 1}/{len(variants)} sites; "
                    "completed units are checkpointed -- fix the stall "
                    "and resume")
        record = CoverageRecord(
            kind=unit.kind.value,
            resistance=unit.resistance,
            condition=cond.name,
            vdd=cond.vdd,
            period=cond.period,
            detected=detected,
            total=len(variants),
            errors=len(entries),
        )
        injections = (injector.counters_since(snapshot)
                      if snapshot is not None else {})
        return UnitOutcome(index=unit.index, unit_id=unit.unit_id,
                           record=record, quarantine=entries, stats=stats,
                           injections=injections)
