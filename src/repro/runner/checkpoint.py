"""Crash-safe campaign checkpoints: survive kills, resume exactly.

The checkpoint is the runner's source of durability: after every
completed work unit the runner appends the unit's result and rewrites
the checkpoint file through :func:`repro.runner.atomic.
atomic_write_text` (write-temp, fsync, rename).  Killing the process at
*any* instant therefore leaves either the previous or the new
checkpoint on disk, both complete and checksummed -- never a torn file.

File format (JSON)::

    {
      "schema":   "repro.campaign-checkpoint",
      "version":  1,
      "checksum": "<sha256 of canonicalised body>",
      "body": {
        "meta":       {...campaign fingerprint: geometry, seed, sweep...},
        "completed":  {"<unit_id>": {...CoverageRecord payload...}},
        "quarantine": [{...error-ledger entry...}]
      }
    }

Corruption handling on load, in order:

1. destination parses and validates -> use it;
2. destination missing/corrupt but the ``.tmp`` sibling validates
   (crash between fsync and rename) -> recover from the temp file;
3. otherwise -> :class:`CheckpointCorruptError` naming the path and the
   specific defect (truncated JSON, checksum mismatch, missing key...).

When a run journal is enabled (:mod:`repro.obs`), the runner mirrors
this lifecycle as ``checkpoint.save`` / ``checkpoint.resume`` events
-- including the temp-file recovery case, which ``status()`` reports
as ``recovered_from_temp``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.runner.atomic import (
    EnvelopeError,
    FaultHook,
    atomic_write_text,
    temp_path_for,
    unwrap_envelope,
    wrap_envelope,
)

SCHEMA = "repro.campaign-checkpoint"
VERSION = 1


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file exists but cannot be trusted.

    Attributes:
        path: The offending file.
        defect: What exactly is wrong with it.
    """

    def __init__(self, path: str | Path, defect: str) -> None:
        self.path = Path(path)
        self.defect = defect
        super().__init__(f"checkpoint {self.path}: {defect}")


class CheckpointMismatchError(RuntimeError):
    """A checkpoint's campaign fingerprint disagrees with the caller's."""


class CampaignCheckpoint:
    """In-memory image of a campaign's durable progress.

    Args:
        meta: Campaign fingerprint -- everything needed to (a) refuse a
            resume against a different campaign and (b) rebuild the
            campaign from the file alone (geometry, seed, n_sites,
            sweep grids, condition set...).  Must be JSON-serialisable.
    """

    def __init__(self, meta: dict[str, Any]) -> None:
        self.meta = dict(meta)
        self.completed: dict[str, dict[str, Any]] = {}
        self.quarantine: list[dict[str, Any]] = []
        #: True when :meth:`load` fell back to the ``.tmp`` sibling.
        self.recovered_from_temp = False

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def record_unit(self, unit_id: str, payload: dict[str, Any],
                    quarantine: list[dict[str, Any]] | None = None) -> None:
        """Mark one work unit complete (with its result payload)."""
        self.completed[unit_id] = dict(payload)
        if quarantine:
            self.quarantine.extend(dict(q) for q in quarantine)

    def is_complete(self, unit_id: str) -> bool:
        """True when the unit's result is already checkpointed."""
        return unit_id in self.completed

    def result_for(self, unit_id: str) -> dict[str, Any]:
        """The stored record payload of a completed unit (KeyError else)."""
        return self.completed[unit_id]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _body(self) -> dict[str, Any]:
        return {
            "meta": self.meta,
            "completed": self.completed,
            "quarantine": self.quarantine,
        }

    def save(self, path: str | Path,
             fault_hook: FaultHook | None = None) -> None:
        """Durably write the checkpoint (atomic replace + checksum)."""
        envelope = wrap_envelope(SCHEMA, VERSION, self._body())
        atomic_write_text(path, json.dumps(envelope, indent=1,
                                           sort_keys=True),
                          fault_hook=fault_hook)

    @classmethod
    def _parse(cls, path: Path, text: str) -> "CampaignCheckpoint":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptError(
                path, f"invalid/truncated JSON ({exc})") from exc
        try:
            _, body = unwrap_envelope(payload, SCHEMA, VERSION)
        except EnvelopeError as exc:
            raise CheckpointCorruptError(path, str(exc)) from exc
        for key in ("meta", "completed", "quarantine"):
            if key not in body:
                raise CheckpointCorruptError(
                    path, f"body is missing the {key!r} key")
        ckpt = cls(body["meta"])
        ckpt.completed = dict(body["completed"])
        ckpt.quarantine = list(body["quarantine"])
        return ckpt

    @classmethod
    def load(cls, path: str | Path) -> "CampaignCheckpoint":
        """Load and validate; fall back to the temp file when possible.

        Raises:
            FileNotFoundError: neither the checkpoint nor a recoverable
                temp sibling exists.
            CheckpointCorruptError: a file exists but fails validation
                (and the temp sibling cannot rescue it).
        """
        path = Path(path)
        main_error: CheckpointCorruptError | None = None
        if path.exists():
            try:
                return cls._parse(path, path.read_text())
            except CheckpointCorruptError as exc:
                main_error = exc
        tmp = temp_path_for(path)
        if tmp.exists():
            try:
                ckpt = cls._parse(tmp, tmp.read_text())
            except CheckpointCorruptError:
                ckpt = None
            if ckpt is not None:
                ckpt.recovered_from_temp = True
                return ckpt
        if main_error is not None:
            raise main_error
        raise FileNotFoundError(
            f"no checkpoint at {path} (and no recoverable {tmp.name})")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def ensure_matches(self, meta: dict[str, Any]) -> None:
        """Refuse to resume a different campaign's checkpoint."""
        mismatched = sorted(
            k for k in set(self.meta) | set(meta)
            if self.meta.get(k) != meta.get(k))
        if mismatched:
            raise CheckpointMismatchError(
                "checkpoint belongs to a different campaign; "
                f"mismatched keys: {', '.join(mismatched)}")

    def status(self, total_units: int | None = None) -> dict[str, Any]:
        """Summary for ``repro campaign status`` and progress logs."""
        out: dict[str, Any] = {
            "completed_units": len(self.completed),
            "quarantined_sites": len(self.quarantine),
            "recovered_from_temp": self.recovered_from_temp,
            "meta": dict(self.meta),
        }
        if total_units is not None:
            out["total_units"] = total_units
            out["remaining_units"] = total_units - len(self.completed)
        return out
