"""repro.runner -- resilient campaign execution.

The subsystem that makes long coverage campaigns interruptible,
resumable and failure-tolerant:

* :mod:`repro.runner.atomic` -- crash-safe writes (write-temp, fsync,
  atomic rename) and versioned/checksummed JSON envelopes;
* :mod:`repro.runner.units` -- deterministic (kind, R, condition)
  work-unit decomposition of a sweep;
* :mod:`repro.runner.retry` -- exponential backoff with deterministic
  jitter, per-call deadlines, exhaustive failure history;
* :mod:`repro.runner.checkpoint` -- durable campaign progress with
  temp-file recovery and fingerprint matching;
* :mod:`repro.runner.chaos` -- seeded fault injection exercising every
  recovery path above;
* :mod:`repro.runner.evaluate` -- the per-unit evaluation core shared
  by serial and parallel execution;
* :mod:`repro.runner.campaign` -- the :class:`CampaignRunner`
  orchestrating all of it (quarantine ledger, graceful degradation,
  optional worker pool and evaluation cache from :mod:`repro.perf`).

See ``docs/robustness.md`` for the architecture tour and
``docs/performance.md`` for the parallel/caching layer.
"""

from repro.runner.atomic import (
    EnvelopeError,
    atomic_write_envelope,
    atomic_write_text,
    body_checksum,
    temp_path_for,
    unwrap_envelope,
    wrap_envelope,
)
from repro.runner.campaign import (
    CampaignResult,
    CampaignRunner,
    SweepSpec,
)
from repro.runner.evaluate import (
    UnitDeadlineExceeded,
    UnitEvaluator,
    UnitOutcome,
)
from repro.runner.chaos import (
    ChaosBehaviorModel,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
)
from repro.runner.checkpoint import (
    CampaignCheckpoint,
    CheckpointCorruptError,
    CheckpointMismatchError,
)
from repro.runner.retry import (
    DEFAULT_UNIT_POLICY,
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
    run_with_retry,
)
from repro.runner.units import WorkUnit, plan_units

__all__ = [
    "EnvelopeError",
    "atomic_write_envelope",
    "atomic_write_text",
    "body_checksum",
    "temp_path_for",
    "unwrap_envelope",
    "wrap_envelope",
    "CampaignResult",
    "CampaignRunner",
    "SweepSpec",
    "UnitDeadlineExceeded",
    "UnitEvaluator",
    "UnitOutcome",
    "ChaosBehaviorModel",
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "CampaignCheckpoint",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "DEFAULT_UNIT_POLICY",
    "RetryExhaustedError",
    "RetryPolicy",
    "RetryStats",
    "run_with_retry",
    "WorkUnit",
    "plan_units",
]
