"""Observability for campaign runs: events, metrics and reports.

``repro.obs`` gives every execution layer (runner, cache, frontier,
shmoo, database) one way to leave a machine-readable account of what
happened and why:

* :mod:`repro.obs.events` -- the stable event vocabulary and JSONL
  run-journal schema;
* :mod:`repro.obs.bus` -- the buffered, atomically-flushed
  :class:`EventBus` plus journal readers;
* :mod:`repro.obs.metrics` -- counters / gauges / monotonic timers;
* :mod:`repro.obs.report` -- journal -> run-report folding and
  text/JSON rendering (the ``repro report`` CLI).

Journals are deterministic by contract: payloads carry no wall-clock
reads or execution knobs, so serial and multi-worker runs of the same
campaign write byte-identical journals, and with no journal requested
the runner makes zero event-bus invocations.
"""

from repro.obs.bus import EventBus, read_journal, read_journal_text
from repro.obs.events import (
    EVENT_CATALOG,
    JOURNAL_SCHEMA,
    JOURNAL_VERSION,
    JournalError,
    ObsEvent,
    validate_event,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    REPORT_SCHEMA,
    REPORT_VERSION,
    build_report,
    render_json,
    render_text,
)

__all__ = [
    "EVENT_CATALOG",
    "EventBus",
    "JOURNAL_SCHEMA",
    "JOURNAL_VERSION",
    "JournalError",
    "MetricsRegistry",
    "ObsEvent",
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "build_report",
    "read_journal",
    "read_journal_text",
    "render_json",
    "render_text",
    "validate_event",
]
