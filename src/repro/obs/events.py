"""The event vocabulary: stable names, required payloads, a journal schema.

The runner stack executes campaigns that the paper's industrial flow
would surround with diagnosis artefacts -- shmoo plots, bitmaps,
per-condition coverage tables -- yet until this module every
interesting execution fact (a corrupt cache discarded, a frontier site
demoted, a retry budget exhausted) was either a bare attribute or
silently dropped.  :mod:`repro.obs` gives those facts one shape:

* an :class:`ObsEvent` is a (sequence number, stable name, JSON payload)
  triple;
* :data:`EVENT_CATALOG` pins the set of stable event names and the
  payload keys each must carry, so journals written today stay
  machine-readable tomorrow;
* a *run journal* is a JSONL file -- one header line naming
  :data:`JOURNAL_SCHEMA`/:data:`JOURNAL_VERSION` plus campaign metadata,
  then one line per event.

Determinism contract (mirrors the PR 4 rules in
``docs/performance.md``): event payloads never contain wall-clock
reads, worker identities or other execution-knob facts.  A journal is a
pure function of *what the campaign computed*, so a 4-worker run and a
serial run of the same campaign write byte-identical journals (asserted
by ``tests/obs/test_campaign_journal.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.runner.atomic import canonical_json

__all__ = [
    "EVENT_CATALOG",
    "JOURNAL_SCHEMA",
    "JOURNAL_VERSION",
    "JournalError",
    "ObsEvent",
    "validate_event",
]

#: Identity of the JSONL run-journal format (header line ``schema``).
JOURNAL_SCHEMA = "repro.run-journal"

#: Version of the journal format this build reads and writes.
JOURNAL_VERSION = 1

#: Stable event names -> payload keys every emission must carry.
#: Names are part of the journal schema: renaming one is a
#: ``JOURNAL_VERSION`` bump.  Payloads may carry *extra* keys freely.
EVENT_CATALOG: dict[str, tuple[str, ...]] = {
    # Campaign lifecycle -------------------------------------------------
    "run.start": ("plan_units",),
    "run.done": ("executed_units", "resumed_units", "cached_units",
                 "quarantined_sites"),
    # Work units (emitted in plan order at the in-order effect point) ---
    "unit.start": ("unit", "kind", "resistance", "condition"),
    "unit.resumed": ("unit",),
    "unit.retry": ("unit", "error"),
    "unit.quarantine": ("unit", "site_index", "attempts", "error"),
    "unit.done": ("unit", "source", "detected", "total", "errors"),
    # Evaluation cache ---------------------------------------------------
    "cache.hit": ("unit",),
    "cache.miss": ("unit",),
    "cache.discard_corrupt": ("path", "error"),
    # Checkpoints --------------------------------------------------------
    "checkpoint.save": ("completed_units",),
    "checkpoint.resume": ("completed_units", "recovered_from_temp"),
    # Pool supervision (parent-side; absent from undisturbed runs) ------
    "pool.worker_lost": ("unit", "units", "cause"),
    "pool.rebuild": ("rebuilds", "budget"),
    "pool.redispatch": ("unit", "units", "attempt"),
    "pool.poison_unit": ("unit", "attempts", "error"),
    "pool.degrade_serial": ("units", "rebuilds"),
    # Frontier sweep solver ---------------------------------------------
    "frontier.group": ("kind", "condition", "sites", "cached"),
    "frontier.demote": ("kind", "condition", "site_index", "reason",
                        "stage"),
    # Vectorised batch evaluator ----------------------------------------
    "batch.group": ("kind", "condition", "sites", "cached"),
    "batch.demote": ("kind", "condition", "site_index", "reason",
                     "stage"),
    # Coverage database --------------------------------------------------
    "database.discard_corrupt_tmp": ("path", "error"),
    # Estimator service (single-process; see docs/service.md) -----------
    "service.request": ("method", "path", "status", "queries", "cached"),
    "service.cache_hit": ("key",),
    "service.reload": ("outcome", "etag"),
    # Shmoo runner -------------------------------------------------------
    "shmoo.start": ("strategy", "voltages", "periods"),
    "shmoo.row": ("row", "vdd", "first_pass"),
    "shmoo.fallback": (),
    "shmoo.done": ("tester_invocations",),
    # Streaming sharded experiment (parent-side, in shard-plan order) ---
    "experiment.shard": ("shard", "devices", "defective", "interesting",
                         "source"),
    "experiment.merge": ("shards", "devices", "defective", "interesting",
                         "standard_fails"),
}


class JournalError(ValueError):
    """A run journal (or a single event) failed schema validation.

    The message names the specific defect -- an unknown event name, a
    missing payload key, a broken header -- and, when raised while
    reading a file, the offending line number.
    """


def validate_event(name: str, data: dict[str, Any]) -> None:
    """Check an event against the catalog before it is recorded.

    Args:
        name: Candidate event name.
        data: Candidate payload.

    Raises:
        JournalError: unknown name, or a required payload key is
            absent.  Extra keys are allowed -- the catalog pins a
            floor, not a ceiling.
    """
    required = EVENT_CATALOG.get(name)
    if required is None:
        raise JournalError(
            f"unknown event name {name!r}; stable names: "
            f"{', '.join(sorted(EVENT_CATALOG))}")
    missing = [k for k in required if k not in data]
    if missing:
        raise JournalError(
            f"event {name!r} is missing required payload key(s) "
            f"{', '.join(repr(k) for k in missing)}")


@dataclass(frozen=True)
class ObsEvent:
    """One structured observation: what happened, in order.

    Attributes:
        seq: 1-based position in the run journal (assigned by the
            emitting :class:`~repro.obs.bus.EventBus`; strictly
            increasing within a journal).
        name: Stable event name from :data:`EVENT_CATALOG`.
        data: JSON-serialisable payload.  Never contains wall-clock
            timestamps (see the module docstring's determinism
            contract).
    """

    seq: int
    name: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_line(self) -> str:
        """The event as one canonical JSONL journal line."""
        return canonical_json(
            {"seq": self.seq, "event": self.name, "data": self.data})

    @classmethod
    def from_line(cls, line: str) -> "ObsEvent":
        """Parse one journal line back into an event.

        Raises:
            JournalError: unparsable JSON, wrong shape, an unknown
                event name or a missing required payload key.
        """
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError(f"invalid JSON event line ({exc})") from exc
        if not isinstance(doc, dict):
            raise JournalError(
                f"event line is {type(doc).__name__}, not an object")
        for key in ("seq", "event", "data"):
            if key not in doc:
                raise JournalError(
                    f"event line is missing the {key!r} key")
        if not isinstance(doc["seq"], int) or doc["seq"] < 1:
            raise JournalError(
                f"event seq must be a positive int, got {doc['seq']!r}")
        if not isinstance(doc["data"], dict):
            raise JournalError(
                f"event data must be an object, "
                f"got {type(doc['data']).__name__}")
        validate_event(doc["event"], doc["data"])
        return cls(doc["seq"], doc["event"], doc["data"])
