"""The event bus: buffered, crash-safe JSONL run journals.

One :class:`EventBus` instance collects a run's :class:`~repro.obs.
events.ObsEvent` stream and -- when bound to a path -- persists it as a
JSONL journal through the library's durable-write machinery
(:func:`repro.runner.atomic.atomic_write_text`: write-temp, fsync,
atomic rename).  Readers therefore never observe a torn journal, and a
crash mid-flush costs at most the events since the previous flush --
the campaign runner flushes alongside every checkpoint save, so journal
and checkpoint stay in step.

Process model: exactly one process (the campaign parent) writes a
journal.  Worker processes never touch the bus -- their per-unit
snapshots travel back inside
:class:`~repro.runner.evaluate.UnitOutcome` and are replayed into the
bus at the runner's in-order effect point, which is what makes a
4-worker journal byte-identical to a serial one.

Cost model: when no journal is requested the runner holds no bus at all
and every emission site is skipped behind an ``is not None`` guard --
zero invocations on the hot path, asserted by
``tests/obs/test_campaign_journal.py`` with a counting wrapper
(:class:`repro.perf.counting.CountingEventBus`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.events import (
    JOURNAL_SCHEMA,
    JOURNAL_VERSION,
    JournalError,
    ObsEvent,
    validate_event,
)
from repro.runner.atomic import atomic_write_text, canonical_json

__all__ = ["EventBus", "read_journal", "read_journal_text"]


class EventBus:
    """Collect structured events; optionally persist them as a journal.

    Args:
        path: Journal destination.  ``None`` keeps the bus in-memory
            (tests, ad-hoc introspection); a path makes :meth:`flush`
            durably rewrite the JSONL file.
        meta: Run metadata recorded in the journal's header line.
            Deliberately restricted by convention to *what the run
            computes* (campaign fingerprint, sweep plan) -- never
            execution knobs like worker counts, so journals stay
            byte-identical across serial/parallel runs.

    Attributes:
        events: Emitted events, in order.
        meta: Header metadata (see :meth:`set_meta`).
    """

    def __init__(self, path: str | Path | None = None,
                 meta: dict[str, Any] | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.meta: dict[str, Any] = dict(meta or {})
        self.events: list[ObsEvent] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, name: str, **data: Any) -> ObsEvent:
        """Record one event (validated against the catalog).

        Args:
            name: Stable event name from
                :data:`~repro.obs.events.EVENT_CATALOG`.
            **data: The event payload.

        Returns:
            The recorded event (sequence number assigned).

        Raises:
            JournalError: unknown name or missing required payload key.
            TypeError: a payload value is not JSON-serialisable (caught
                at emission, not at flush, so the stack trace points at
                the offending call site).
        """
        validate_event(name, data)
        event = ObsEvent(self._seq + 1, name, data)
        event.to_line()
        self._seq += 1
        self.events.append(event)
        return event

    def set_meta(self, meta: dict[str, Any]) -> None:
        """Install header metadata unless some was already provided.

        First writer wins: a caller that constructed the bus with
        explicit metadata keeps it even when the runner later offers
        its campaign fingerprint.
        """
        if not self.meta:
            self.meta = dict(meta)

    def __len__(self) -> int:
        """Number of events emitted so far."""
        return len(self.events)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The full journal text (header line + one line per event)."""
        header = canonical_json({
            "schema": JOURNAL_SCHEMA,
            "version": JOURNAL_VERSION,
            "meta": self.meta,
        })
        lines = [header]
        lines.extend(event.to_line() for event in self.events)
        return "\n".join(lines) + "\n"

    def flush(self) -> None:
        """Durably rewrite the journal file (no-op for in-memory buses).

        Uses the atomic write-temp/fsync/rename helper, so a reader (or
        a crash) can never observe a truncated journal -- at worst a
        stale one.
        """
        if self.path is not None:
            atomic_write_text(self.path, self.render())

    def close(self) -> None:
        """Final flush (alias kept for with-statement style call sites)."""
        self.flush()


def read_journal_text(text: str) -> tuple[dict[str, Any], list[ObsEvent]]:
    """Parse and validate journal text into (header meta, events).

    Raises:
        JournalError: empty text, a broken header, an invalid event
            line (the message names the 1-based line number) or a
            non-increasing sequence number.
    """
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise JournalError("journal is empty (missing header line)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise JournalError(f"line 1: invalid JSON header ({exc})") from exc
    if not isinstance(header, dict):
        raise JournalError("line 1: header is not an object")
    if header.get("schema") != JOURNAL_SCHEMA:
        raise JournalError(
            f"line 1: schema mismatch (expected {JOURNAL_SCHEMA!r}, "
            f"found {header.get('schema')!r})")
    version = header.get("version")
    if not isinstance(version, int) or not 1 <= version <= JOURNAL_VERSION:
        raise JournalError(
            f"line 1: unsupported journal version {version!r} "
            f"(this build reads versions 1..{JOURNAL_VERSION})")
    meta = header.get("meta")
    if not isinstance(meta, dict):
        raise JournalError("line 1: header 'meta' is not an object")
    events: list[ObsEvent] = []
    previous_seq = 0
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            event = ObsEvent.from_line(line)
        except JournalError as exc:
            raise JournalError(f"line {lineno}: {exc}") from exc
        if event.seq <= previous_seq:
            raise JournalError(
                f"line {lineno}: seq {event.seq} is not greater than "
                f"the previous seq {previous_seq}")
        previous_seq = event.seq
        events.append(event)
    return meta, events


def read_journal(path: str | Path) -> tuple[dict[str, Any], list[ObsEvent]]:
    """Load and validate a journal file into (header meta, events).

    Args:
        path: Journal file written by :meth:`EventBus.flush`.

    Raises:
        FileNotFoundError: no such file.
        JournalError: the content fails validation (the message names
            the offending line).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no run journal at {path}")
    try:
        return read_journal_text(path.read_text())
    except JournalError as exc:
        raise JournalError(f"{path}: {exc}") from exc
