"""Run reports: fold a journal's event stream into a human summary.

:func:`build_report` replays a run journal (header meta plus ordered
:class:`~repro.obs.events.ObsEvent` stream) into one JSON-serialisable
report document; :func:`render_text` and :func:`render_json` format it
for terminals and machines respectively.  This is the read side of the
``repro report <journal>`` CLI.

The report is a pure function of the journal, which is itself a pure
function of what the campaign computed -- so reports inherit the
journal's determinism and a report regenerated from a resumed or
4-worker run matches the serial one.

Sections always render (with an explicit ``(none)`` marker when empty)
so downstream tooling -- ``scripts/check.sh`` greps for the quarantine
and demotion tables -- never has to distinguish "clean run" from
"section missing".
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.events import ObsEvent
from repro.runner.atomic import canonical_json

__all__ = [
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "build_report",
    "render_json",
    "render_text",
]

#: Identity of the report document produced by :func:`build_report`.
REPORT_SCHEMA = "repro.run-report"

#: Version of the report document layout.
REPORT_VERSION = 1


def build_report(meta: dict[str, Any],
                 events: Iterable[ObsEvent]) -> dict[str, Any]:
    """Fold journal events into one report document.

    Args:
        meta: Journal header metadata (as returned by
            :func:`repro.obs.bus.read_journal`).
        events: The journal's events, in sequence order.

    Returns:
        A JSON-serialisable dict: run totals, per-condition unit
        table, cache statistics (including corrupt discards), retry /
        quarantine / frontier-demotion tables, pool-supervision
        counters (worker losses, rebuilds, poison units), checkpoint
        activity and -- when present -- shmoo, streaming-experiment
        and estimator-service summaries.
    """
    events = list(events)
    totals: dict[str, Any] = {"events": len(events)}
    conditions: dict[str, dict[str, int]] = {}
    unit_condition: dict[str, str] = {}
    cache = {"hits": 0, "misses": 0, "hit_rate": None,
             "discarded_corrupt": []}
    retries: dict[str, Any] = {"attempts": 0, "by_unit": {}}
    quarantines: list[dict[str, Any]] = []
    demotions: list[dict[str, Any]] = []
    frontier_groups: list[dict[str, Any]] = []
    batch_demotions: list[dict[str, Any]] = []
    batch_groups: list[dict[str, Any]] = []
    checkpoints = {"saves": 0, "resumes": 0}
    pool: dict[str, Any] = {"worker_losses": 0, "deadline_losses": 0,
                            "rebuilds": 0, "redispatched_units": 0,
                            "degraded_units": 0, "degraded": False,
                            "poison_units": []}
    database = {"discarded_corrupt_tmp": []}
    shmoo: dict[str, Any] | None = None
    experiment: dict[str, Any] | None = None
    service: dict[str, Any] | None = None
    sources: dict[str, int] = {}

    def service_section() -> dict[str, Any]:
        nonlocal service
        if service is None:
            service = {"requests": 0, "queries": 0, "cached": 0,
                       "by_status": {}, "cache_hits": 0, "reloads": []}
        return service

    for event in events:
        data = event.data
        if event.name == "run.start":
            totals["plan_units"] = data["plan_units"]
        elif event.name == "run.done":
            for key in ("executed_units", "resumed_units",
                        "cached_units", "quarantined_sites"):
                totals[key] = data[key]
        elif event.name == "unit.start":
            unit_condition[data["unit"]] = data["condition"]
        elif event.name == "unit.done":
            condition = data.get(
                "condition", unit_condition.get(data["unit"], "?"))
            row = conditions.setdefault(
                condition,
                {"units": 0, "detected": 0, "total": 0, "errors": 0})
            row["units"] += 1
            row["detected"] += data["detected"]
            row["total"] += data["total"]
            row["errors"] += data["errors"]
            sources[data["source"]] = sources.get(data["source"], 0) + 1
        elif event.name == "unit.retry":
            retries["attempts"] += 1
            by_unit = retries["by_unit"]
            by_unit[data["unit"]] = by_unit.get(data["unit"], 0) + 1
        elif event.name == "unit.quarantine":
            quarantines.append(dict(data))
        elif event.name == "cache.hit":
            cache["hits"] += 1
        elif event.name == "cache.miss":
            cache["misses"] += 1
        elif event.name == "cache.discard_corrupt":
            cache["discarded_corrupt"].append(dict(data))
        elif event.name == "checkpoint.save":
            checkpoints["saves"] += 1
        elif event.name == "checkpoint.resume":
            checkpoints["resumes"] += 1
        elif event.name == "pool.worker_lost":
            pool["worker_losses"] += 1
            if data["cause"] == "chunk-deadline":
                pool["deadline_losses"] += 1
        elif event.name == "pool.rebuild":
            pool["rebuilds"] += 1
        elif event.name == "pool.redispatch":
            pool["redispatched_units"] += data["units"]
        elif event.name == "pool.poison_unit":
            pool["poison_units"].append(dict(data))
        elif event.name == "pool.degrade_serial":
            pool["degraded"] = True
            pool["degraded_units"] += data["units"]
        elif event.name == "frontier.group":
            frontier_groups.append(dict(data))
        elif event.name == "frontier.demote":
            demotions.append(dict(data))
        elif event.name == "batch.group":
            batch_groups.append(dict(data))
        elif event.name == "batch.demote":
            batch_demotions.append(dict(data))
        elif event.name == "database.discard_corrupt_tmp":
            database["discarded_corrupt_tmp"].append(dict(data))
        elif event.name == "shmoo.start":
            shmoo = {"strategy": data["strategy"],
                     "voltages": data["voltages"],
                     "periods": data["periods"],
                     "rows": 0, "fallbacks": 0,
                     "tester_invocations": None}
        elif event.name == "shmoo.row" and shmoo is not None:
            shmoo["rows"] += 1
        elif event.name == "shmoo.fallback" and shmoo is not None:
            shmoo["fallbacks"] += 1
        elif event.name == "shmoo.done" and shmoo is not None:
            shmoo["tester_invocations"] = data["tester_invocations"]
        elif event.name == "experiment.shard":
            if experiment is None:
                experiment = {"shards": 0, "devices": 0, "defective": 0,
                              "interesting": 0, "standard_fails": None,
                              "shard_sources": {}}
            experiment["shards"] += 1
            experiment["devices"] += data["devices"]
            experiment["defective"] += data["defective"]
            experiment["interesting"] += data["interesting"]
            sources_row = experiment["shard_sources"]
            sources_row[data["source"]] = (
                sources_row.get(data["source"], 0) + 1)
        elif event.name == "service.request":
            row = service_section()
            row["requests"] += 1
            row["queries"] += data["queries"]
            if data["cached"]:
                row["cached"] += 1
            status = str(data["status"])
            row["by_status"][status] = row["by_status"].get(status, 0) + 1
        elif event.name == "service.cache_hit":
            service_section()["cache_hits"] += 1
        elif event.name == "service.reload":
            service_section()["reloads"].append(dict(data))
        elif event.name == "experiment.merge" and experiment is not None:
            # The merge event is authoritative (it carries the reduced
            # accumulator); per-shard sums above double as a
            # consistency cross-check for readers.
            experiment["devices"] = data["devices"]
            experiment["defective"] = data["defective"]
            experiment["interesting"] = data["interesting"]
            experiment["standard_fails"] = data["standard_fails"]

    probes = cache["hits"] + cache["misses"]
    if probes:
        cache["hit_rate"] = cache["hits"] / probes
    return {
        "schema": REPORT_SCHEMA,
        "version": REPORT_VERSION,
        "meta": dict(meta),
        "totals": totals,
        "conditions": {name: conditions[name]
                       for name in sorted(conditions)},
        "sources": dict(sorted(sources.items())),
        "cache": cache,
        "retries": retries,
        "quarantines": quarantines,
        "frontier": {"groups": frontier_groups, "demotions": demotions},
        "batch": {"groups": batch_groups, "demotions": batch_demotions},
        "pool": pool,
        "checkpoints": checkpoints,
        "database": database,
        "shmoo": shmoo,
        "experiment": experiment,
        "service": service,
    }


def render_json(report: dict[str, Any]) -> str:
    """The report as one canonical-JSON document (machine format)."""
    return canonical_json(report) + "\n"


def _table(header: list[str], rows: list[list[str]]) -> list[str]:
    """Left-aligned fixed-width text table (header + rows)."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*header)]
    lines.extend(fmt.format(*row) for row in rows)
    return lines


def render_text(report: dict[str, Any]) -> str:
    """The report as a terminal-friendly multi-section summary."""
    lines: list[str] = []
    totals = report["totals"]
    lines.append(f"Run report ({report['schema']} v{report['version']})")
    if report["meta"]:
        meta_bits = ", ".join(
            f"{k}={v}" for k, v in sorted(report["meta"].items()))
        lines.append(f"meta: {meta_bits}")
    lines.append(
        "totals: plan={} executed={} resumed={} cached={} "
        "quarantined={}".format(
            totals.get("plan_units", "?"),
            totals.get("executed_units", "?"),
            totals.get("resumed_units", "?"),
            totals.get("cached_units", "?"),
            totals.get("quarantined_sites", "?")))

    lines.append("")
    lines.append("Per-condition units:")
    if report["conditions"]:
        rows = [[name, str(row["units"]), str(row["detected"]),
                 str(row["total"]), str(row["errors"])]
                for name, row in report["conditions"].items()]
        lines.extend("  " + ln for ln in _table(
            ["condition", "units", "detected", "total", "errors"], rows))
    else:
        lines.append("  (none)")

    cache = report["cache"]
    lines.append("")
    probes = cache["hits"] + cache["misses"]
    if probes:
        lines.append(
            "Cache: hits={} misses={} hit_rate={:.1%}".format(
                cache["hits"], cache["misses"], cache["hit_rate"]))
    else:
        lines.append("Cache: no lookups recorded")
    lines.append("Corrupt cache discards:")
    if cache["discarded_corrupt"]:
        for entry in cache["discarded_corrupt"]:
            lines.append(f"  {entry['path']}: {entry['error']}")
    else:
        lines.append("  (none)")

    retries = report["retries"]
    lines.append("")
    lines.append(
        f"Retries: {retries['attempts']} failed attempt(s) across "
        f"{len(retries['by_unit'])} unit(s)")
    for unit, count in sorted(retries["by_unit"].items()):
        lines.append(f"  {unit}: {count}")

    lines.append("")
    lines.append("Quarantines:")
    if report["quarantines"]:
        rows = [[q["unit"], str(q["site_index"]), str(q["attempts"]),
                 q["error"]] for q in report["quarantines"]]
        lines.extend("  " + ln for ln in _table(
            ["unit", "site", "attempts", "error"], rows))
    else:
        lines.append("  (none)")

    lines.append("")
    lines.append("Frontier demotions:")
    if report["frontier"]["demotions"]:
        rows = [[d["kind"], d["condition"], str(d["site_index"]),
                 d["reason"], d["stage"]]
                for d in report["frontier"]["demotions"]]
        lines.extend("  " + ln for ln in _table(
            ["kind", "condition", "site", "reason", "stage"], rows))
    else:
        lines.append("  (none)")

    lines.append("")
    lines.append("Batch demotions:")
    if report["batch"]["demotions"]:
        rows = [[d["kind"], d["condition"], str(d["site_index"]),
                 d["reason"], d["stage"]]
                for d in report["batch"]["demotions"]]
        lines.extend("  " + ln for ln in _table(
            ["kind", "condition", "site", "reason", "stage"], rows))
    else:
        lines.append("  (none)")

    pool = report["pool"]
    lines.append("")
    lines.append(
        "Pool supervision: worker_losses={} (deadline={}) rebuilds={} "
        "redispatched_units={}{}".format(
            pool["worker_losses"], pool["deadline_losses"],
            pool["rebuilds"], pool["redispatched_units"],
            (f" DEGRADED-SERIAL units={pool['degraded_units']}"
             if pool["degraded"] else "")))
    lines.append("Poison units:")
    if pool["poison_units"]:
        rows = [[p["unit"], str(p["attempts"]), p["error"]]
                for p in pool["poison_units"]]
        lines.extend("  " + ln for ln in _table(
            ["unit", "attempts", "error"], rows))
    else:
        lines.append("  (none)")

    checkpoints = report["checkpoints"]
    lines.append("")
    lines.append("Checkpoints: saves={} resumes={}".format(
        checkpoints["saves"], checkpoints["resumes"]))
    for entry in report["database"]["discarded_corrupt_tmp"]:
        lines.append(
            f"Discarded corrupt database temp {entry['path']}: "
            f"{entry['error']}")

    shmoo = report["shmoo"]
    if shmoo is not None:
        lines.append("")
        lines.append(
            "Shmoo: strategy={} grid={}x{} rows={} fallbacks={} "
            "tester_invocations={}".format(
                shmoo["strategy"], shmoo["voltages"], shmoo["periods"],
                shmoo["rows"], shmoo["fallbacks"],
                shmoo["tester_invocations"]))

    experiment = report.get("experiment")
    if experiment is not None:
        lines.append("")
        lines.append(
            "Streaming experiment: shards={} devices={} defective={} "
            "interesting={} standard_fails={}".format(
                experiment["shards"], experiment["devices"],
                experiment["defective"], experiment["interesting"],
                experiment["standard_fails"]))
        source_bits = ", ".join(
            f"{name}={count}" for name, count in
            sorted(experiment["shard_sources"].items()))
        lines.append(f"  shard sources: {source_bits}")

    service = report.get("service")
    if service is not None:
        lines.append("")
        status_bits = ", ".join(
            f"{status}={count}" for status, count in
            sorted(service["by_status"].items()))
        lines.append(
            "Service: requests={} queries={} cache_hits={} "
            "cached_responses={}".format(
                service["requests"], service["queries"],
                service["cache_hits"], service["cached"]))
        lines.append(f"  by status: {status_bits or '(none)'}")
        lines.append("  reloads:")
        if service["reloads"]:
            for entry in service["reloads"]:
                bits = "{}: etag={}".format(
                    entry["outcome"], entry["etag"][:12])
                if "error" in entry:
                    bits += f" error={entry['error']}"
                lines.append(f"    {bits}")
        else:
            lines.append("    (none)")
    return "\n".join(lines) + "\n"
