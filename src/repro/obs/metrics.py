"""The metrics registry: counters, gauges and monotonic timers.

A :class:`MetricsRegistry` is the quantitative half of :mod:`repro.obs`
(the event bus is the qualitative half).  It follows the same
determinism contract as the journal (see :mod:`repro.obs.events`):

* counters and gauges are pure functions of what the run computed, so
  their snapshot is safe to embed in journals, reports and benchmark
  records;
* timers read :func:`time.monotonic` (never wall clock) and are
  *excluded* from :meth:`MetricsRegistry.snapshot` by default -- timing
  is real observability but would break byte-identical journals, so a
  caller must opt in with ``include_timers=True``.

Pool workers never hold a registry.  The campaign runner counts at its
in-order effect point from the outcome objects workers send back, and
:meth:`merge` exists for callers that aggregate registries from
multiple sequential runs (e.g. a soak harness folding per-iteration
registries into one).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Accumulate named counters, gauges and monotonic timers.

    Args:
        clock: Monotonic time source, injectable for tests.  Defaults
            to :func:`time.monotonic`.

    Attributes:
        counters: Monotonically increasing event tallies.
        gauges: Last-write-wins instantaneous values.
        timers: Per-name ``{"count": n, "total_s": seconds}`` from
            :meth:`timer` blocks.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block against monotonic timer ``name``.

        Accumulates into ``timers[name]`` as a (count, total seconds)
        pair; never touches the wall clock.
        """
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            slot = self.timers.setdefault(
                name, {"count": 0, "total_s": 0.0})
            slot["count"] += 1
            slot["total_s"] += elapsed

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters and timer totals add; gauges follow last-write-wins
        (the merged-in registry is treated as the later writer).
        """
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)
        for name, slot in other.timers.items():
            mine = self.timers.setdefault(
                name, {"count": 0, "total_s": 0.0})
            mine["count"] += slot["count"]
            mine["total_s"] += slot["total_s"]

    def snapshot(self, include_timers: bool = False) -> dict[str, Any]:
        """A JSON-serialisable view of the registry.

        Args:
            include_timers: Opt in to the (non-deterministic) timer
                section.  The default omits it so snapshots are safe
                to embed in byte-identity-checked artefacts.

        Returns:
            ``{"counters": {...}, "gauges": {...}}`` with keys sorted,
            plus ``"timers"`` when requested.
        """
        view: dict[str, Any] = {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }
        if include_timers:
            view["timers"] = {
                name: dict(slot)
                for name, slot in sorted(self.timers.items())
            }
        return view
