"""Figure renderers: text reproductions of the paper's plots.

Shmoo plots render themselves (:meth:`repro.tester.shmoo.ShmooPlot.render`);
this module adds the remaining figures: the Figure 8 open-detection
curve, waveform strip charts for the Figure 5/6 decoder-open
simulations, and the Figure 11 Venn comparison.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.circuit.waveform import Waveform
from repro.experiment.venn import VennCounts


def render_frequency_curve(frequencies_hz: Sequence[float],
                           thresholds_ohm: Sequence[float],
                           title: str = "Resistive open detection vs "
                                        "test frequency (Figure 8)") -> str:
    """Render detectable-open-resistance vs frequency as a text chart."""
    if len(frequencies_hz) != len(thresholds_ohm):
        raise ValueError("axes must have equal length")
    lines = [title, f"{'freq':>10}  {'R_min detect':>14}  "]
    finite = [t for t in thresholds_ohm if t > 0 and np.isfinite(t)]
    top = max(finite) if finite else 1.0
    for f, t in zip(frequencies_hz, thresholds_ohm):
        if t <= 0 or not np.isfinite(t):
            bar, label = "", "(all escape)"
        else:
            bar = "#" * max(1, int(40 * t / top))
            label = f"{t / 1e6:8.2f} Mohm"
        lines.append(f"{f / 1e6:8.0f}MHz  {label:>14}  {bar}")
    return "\n".join(lines)


def render_waveforms(waves: dict[str, Waveform], vdd: float,
                     n_cols: int = 72, title: str = "") -> str:
    """Strip-chart rendering of transient waveforms (Figures 5/6 style).

    Each node gets one row of characters sampled uniformly in time:
    ``#`` above 0.7 Vdd, ``.`` below 0.3 Vdd, ``-`` in between.
    """
    lines = [title] if title else []
    for node, wf in waves.items():
        t_lo, t_hi = float(wf.time[0]), float(wf.time[-1])
        samples = np.linspace(t_lo, t_hi, n_cols)
        chars = []
        for t in samples:
            v = wf.at(float(t))
            if v >= 0.7 * vdd:
                chars.append("#")
            elif v <= 0.3 * vdd:
                chars.append(".")
            else:
                chars.append("-")
        lines.append(f"{node:>12} |{''.join(chars)}|")
    if waves:
        any_wf = next(iter(waves.values()))
        lines.append(
            f"{'':>12}  t = {any_wf.time[0] * 1e9:.1f} .. "
            f"{any_wf.time[-1] * 1e9:.1f} ns"
        )
    return "\n".join(lines)


def render_venn_comparison(simulated: VennCounts, paper: VennCounts) -> str:
    """Side-by-side Venn region counts, simulated vs paper (Figure 11)."""
    lines = [f"{'region':>18}  {'simulated':>9}  {'paper':>5}"]
    for label in simulated.as_dict():
        lines.append(
            f"{label:>18}  {simulated.as_dict()[label]:>9}  "
            f"{paper.as_dict()[label]:>5}"
        )
    lines.append(
        f"{'total':>18}  {simulated.total:>9}  {paper.total:>5}"
    )
    return "\n".join(lines)
