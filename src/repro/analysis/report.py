"""Whole-study report: run everything, print paper-vs-measured.

:func:`full_report` chains the estimator flow and the population
experiment and renders every reproduced table/figure into one text
document -- the programmatic equivalent of EXPERIMENTS.md, useful as a
single entry point (``python -m repro.analysis.report``).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import render_frequency_curve, render_venn_comparison
from repro.analysis.tables import render_table1
from repro.circuit.technology import CMOS018
from repro.core.flow import MemoryTestFlow
from repro.defects.behavior import DefectBehaviorModel
from repro.experiment.classify import StressClassifier
from repro.experiment.population import PopulationGenerator
from repro.experiment.venn import PAPER_VENN, VennCounts
from repro.memory.geometry import VEQTOR4_INSTANCE


def full_report(n_sites: int = 4000, n_devices: int = 11000) -> str:
    """Run the flow + experiment and render the comparison report."""
    sections = []

    flow = MemoryTestFlow(VEQTOR4_INSTANCE, n_sites=n_sites)
    result = flow.run()
    sections.append("== Table 1: Defect Coverage and DPM Estimator "
                    "(measured, paper in parentheses) ==")
    sections.append(render_table1(result.bridge_report))
    ratio = result.bridge_report.dpm_ratio("Vmax", "VLV")
    sections.append(
        f"DPM ratio Vmax/VLV: {ratio:.1f}x (paper: 9.3x -- 'almost an "
        "order of magnitude')"
    )

    sections.append("\n== Figure 8: open detection vs frequency ==")
    behavior = DefectBehaviorModel(CMOS018)
    freqs = np.array([25e6, 50e6, 66e6, 100e6, 150e6, 200e6])
    thresholds = [behavior.open_detection_threshold(1.0 / f) for f in freqs]
    sections.append(render_frequency_curve(freqs, thresholds))
    sections.append("paper anchors: 4 Mohm @ 50 MHz, 1.5 Mohm @ 100 MHz")

    sections.append("\n== Figure 11: Venn of interesting devices ==")
    from repro.experiment.population import PopulationSpec

    spec = PopulationSpec(n_devices=n_devices)
    experiment = StressClassifier().classify(
        PopulationGenerator(spec).generate())
    venn = VennCounts.from_experiment(experiment)
    sections.append(render_venn_comparison(venn, PAPER_VENN))

    sections.append("\n== Simulation vs silicon agreement (Section 5) ==")
    vlv_escapes = experiment.escape_dpm("VLV")
    vmax_escapes = experiment.escape_dpm("Vmax")
    sections.append(
        f"population escape rate caught by VLV: {vlv_escapes:.0f} DPM; "
        f"by Vmax: {vmax_escapes:.0f} DPM; "
        f"ratio {vlv_escapes / max(vmax_escapes, 1e-9):.1f}x "
        "(estimator predicted ~an order of magnitude; paper: ~9x)"
    )

    sections.append("\n== Extension: MOVI vs linear on decoder delay "
                    "faults [Azimane 04] ==")
    from repro.faults.address_delay import generate_address_delay_faults
    from repro.march.library import TEST_11N
    from repro.tester.movi import MoviExecutor

    executor = MoviExecutor(5)
    universe = generate_address_delay_faults(5)
    linear = sum(executor.linear_reference(TEST_11N, f).detected
                 for f in universe)
    movi = sum(executor.run(TEST_11N, f,
                            stop_at_first_detection=True).detected
               for f in universe)
    sections.append(
        f"linear 11N: {linear}/{len(universe)} delay faults; "
        f"MOVI procedure: {movi}/{len(universe)}")

    sections.append("\n== Extension: stress-condition test-plan "
                    "optimisation ==")
    from repro.core.testplan import JointCoverageTable, TestPlanOptimizer
    from repro.stress import production_conditions

    table = JointCoverageTable(VEQTOR4_INSTANCE, CMOS018,
                               production_conditions(CMOS018),
                               n_samples=min(3000, n_sites))
    optimizer = TestPlanOptimizer(table, TEST_11N)
    sections.append("time/DPM Pareto front:")
    for plan in optimizer.pareto_front():
        sections.append(f"  {plan}")

    return "\n".join(sections)


if __name__ == "__main__":
    print(full_report())
