"""Table renderers: reproduce the paper's tabular outputs as text.

The flagship is :func:`render_table1` -- the paper's Table 1 ("Defect
Coverage and DPM Estimator"): fault coverage per bridge resistance per
supply condition, the R-distribution-weighted defect coverage and the
normalised DPM, optionally side-by-side with the paper's published
numbers.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.estimator import EstimatorReport

#: The paper's published Table 1 (CMOS 0.18 um, resistive bridges).
PAPER_TABLE1: dict[str, dict] = {
    "VLV": {
        "voltage": 1.00,
        "fault_coverage": {20.0: 99.61, 1e3: 98.57, 10e3: 98.57, 90e3: 88.90},
        "defect_coverage": 98.92,
        "dpm_normalised": 1.0,
    },
    "Vmin": {
        "voltage": 1.65,
        "fault_coverage": {20.0: 97.76, 1e3: 86.95, 10e3: 86.95, 90e3: 77.91},
        "defect_coverage": 95.15,
        "dpm_normalised": 4.4,
    },
    "Vnom": {
        "voltage": 1.80,
        "fault_coverage": {20.0: 97.58, 1e3: 87.90, 10e3: 86.95, 90e3: 30.81},
        "defect_coverage": 95.10,
        "dpm_normalised": 4.45,
    },
    "Vmax": {
        "voltage": 1.95,
        "fault_coverage": {20.0: 95.65, 1e3: 87.89, 10e3: 87.82, 90e3: 1.22},
        "defect_coverage": 89.76,
        "dpm_normalised": 9.3,
    },
}

#: Condition order of Table 1 (supply ascending).
TABLE1_ORDER = ("VLV", "Vmin", "Vnom", "Vmax")


def render_table1(report: EstimatorReport,
                  resistances: Sequence[float] = (20.0, 1e3, 10e3, 90e3),
                  compare_paper: bool = True) -> str:
    """Render the estimator's bridge report as the paper's Table 1.

    Args:
        report: Estimator output (``kind='bridge'``).
        resistances: Resistance columns (ohms).
        compare_paper: Append the paper's published value in
            parentheses next to every measured number.

    Returns:
        A fixed-width text table.
    """
    header = ["Condition", "Vdd"]
    header += [_fmt_r(r) for r in resistances]
    header += ["DefCov %", "DPM(norm)"]
    rows = [header]

    for name in TABLE1_ORDER:
        try:
            est = report.by_condition(name)
        except KeyError:
            continue
        paper = PAPER_TABLE1.get(name, {})
        row = [name, f"{paper.get('voltage', 0.0):.2f} V"]
        for r in resistances:
            measured = 100.0 * _nearest_coverage(est.fault_coverage, r)
            cell = f"{measured:6.2f}"
            if compare_paper and r in paper.get("fault_coverage", {}):
                cell += f" ({paper['fault_coverage'][r]:5.2f})"
            row.append(cell)
        dc = f"{100.0 * est.defect_coverage:6.2f}"
        if compare_paper and "defect_coverage" in paper:
            dc += f" ({paper['defect_coverage']:5.2f})"
        row.append(dc)
        norm = f"{est.dpm_normalised:5.2f}x"
        if compare_paper and "dpm_normalised" in paper:
            norm += f" ({paper['dpm_normalised']:.2f}x)"
        row.append(norm)
        rows.append(row)
    return _render_grid(rows)


def render_coverage_matrix(matrix: dict[str, dict[str, object]]) -> str:
    """Render a test x fault-class coverage matrix (from
    :func:`repro.faults.coverage.coverage_matrix`)."""
    if not matrix:
        return "(empty matrix)"
    classes = sorted(next(iter(matrix.values())).keys())
    rows = [["Test"] + classes]
    for test_name, row in matrix.items():
        rows.append(
            [test_name] + [f"{row[fc].percent:6.1f}" for fc in classes]
        )
    return _render_grid(rows)


def _fmt_r(r: float) -> str:
    if r >= 1e6:
        return f"{r / 1e6:g} Mohm"
    if r >= 1e3:
        return f"{r / 1e3:g} kohm"
    return f"{r:g} ohm"


def _nearest_coverage(fc: dict[float, float], r: float) -> float:
    if r in fc:
        return fc[r]
    nearest = min(fc, key=lambda x: abs(x - r))
    return fc[nearest]


def _render_grid(rows: list[list[str]]) -> str:
    widths = [
        max(len(str(row[i])) for row in rows)
        for i in range(len(rows[0]))
    ]
    lines = []
    for idx, row in enumerate(rows):
        line = "  ".join(str(c).rjust(w) for c, w in zip(row, widths))
        lines.append(line)
        if idx == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
