"""Machine-readable exports of every result artefact.

The text renderers in :mod:`repro.analysis.tables` / ``figures`` target
humans; this module writes the same artefacts as CSV/JSON for
spreadsheets and plotting pipelines:

* coverage records (the campaign's raw sweep),
* estimator reports (per-condition coverage/DPM),
* shmoo plots (long-format grid),
* Venn counts and test plans.

Every writer serialises in memory first and lands the bytes through
:func:`repro.runner.atomic.atomic_write_text` (write-temp, fsync,
atomic rename), so a crash mid-export can never leave a torn CSV/JSON
behind a previously good one; JSON payloads are key-sorted so
re-exporting identical results yields identical bytes.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.core.estimator import EstimatorReport
from repro.experiment.venn import VennCounts
from repro.ifa.flow import CoverageRecord
from repro.runner.atomic import atomic_write_text
from repro.tester.shmoo import ShmooPlot


def _write_csv(path: str | Path, header: list[str],
               rows: list[list[object]]) -> None:
    """Serialise one CSV table in memory and write it durably."""
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    atomic_write_text(path, buffer.getvalue())


def write_coverage_csv(records: list[CoverageRecord],
                       path: str | Path) -> None:
    """Campaign sweep as CSV (one row per (kind, R, condition))."""
    _write_csv(path,
               ["kind", "resistance_ohm", "condition", "vdd_v", "period_s",
                "detected", "total", "coverage"],
               [[r.kind, r.resistance, r.condition, r.vdd, r.period,
                 r.detected, r.total, f"{r.coverage:.6f}"]
                for r in records])


def write_estimator_json(report: EstimatorReport, path: str | Path) -> None:
    """Estimator report as JSON (the paper's Table 1, structured)."""
    payload = {
        "kind": report.kind,
        "geometry": {
            "rows": report.geometry.rows,
            "columns": report.geometry.columns,
            "bits_per_word": report.geometry.bits_per_word,
            "blocks": report.geometry.blocks,
            "bits": report.geometry.bits,
        },
        "yield": report.yield_fraction,
        "conditions": [
            {
                "condition": est.condition,
                "fault_coverage": {f"{r:g}": c
                                   for r, c in est.fault_coverage.items()},
                "defect_coverage": est.defect_coverage,
                "dpm": est.dpm,
                "dpm_normalised": est.dpm_normalised,
            }
            for est in report.estimates
        ],
    }
    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True))


def write_shmoo_csv(plot: ShmooPlot, path: str | Path) -> None:
    """Shmoo grid in long format: one row per (vdd, period) point."""
    _write_csv(path,
               ["vdd_v", "period_s", "passed"],
               [[float(vdd), float(period), int(plot.passed[i, j])]
                for i, vdd in enumerate(plot.voltages)
                for j, period in enumerate(plot.periods)])


def write_venn_json(venn: VennCounts, path: str | Path,
                    n_devices: int | None = None) -> None:
    """Venn regions as JSON (Figure 11, structured)."""
    payload = {"regions": venn.as_dict(), "total": venn.total}
    if n_devices is not None:
        payload["n_devices"] = n_devices
    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True))


def write_plans_csv(plans, path: str | Path) -> None:
    """Test plans (e.g. a Pareto front) as CSV."""
    _write_csv(path,
               ["conditions", "test_time_s", "defect_coverage", "dpm"],
               [["+".join(plan.conditions), plan.test_time,
                 f"{plan.defect_coverage:.6f}", f"{plan.dpm:.3f}"]
                for plan in plans])