"""Machine-readable exports of every result artefact.

The text renderers in :mod:`repro.analysis.tables` / ``figures`` target
humans; this module writes the same artefacts as CSV/JSON for
spreadsheets and plotting pipelines:

* coverage records (the campaign's raw sweep),
* estimator reports (per-condition coverage/DPM),
* shmoo plots (long-format grid),
* Venn counts and test plans.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.core.estimator import EstimatorReport
from repro.experiment.venn import VennCounts
from repro.ifa.flow import CoverageRecord
from repro.tester.shmoo import ShmooPlot


def write_coverage_csv(records: list[CoverageRecord],
                       path: str | Path) -> None:
    """Campaign sweep as CSV (one row per (kind, R, condition))."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", "resistance_ohm", "condition", "vdd_v",
                         "period_s", "detected", "total", "coverage"])
        for r in records:
            writer.writerow([r.kind, r.resistance, r.condition, r.vdd,
                             r.period, r.detected, r.total,
                             f"{r.coverage:.6f}"])


def write_estimator_json(report: EstimatorReport, path: str | Path) -> None:
    """Estimator report as JSON (the paper's Table 1, structured)."""
    payload = {
        "kind": report.kind,
        "geometry": {
            "rows": report.geometry.rows,
            "columns": report.geometry.columns,
            "bits_per_word": report.geometry.bits_per_word,
            "blocks": report.geometry.blocks,
            "bits": report.geometry.bits,
        },
        "yield": report.yield_fraction,
        "conditions": [
            {
                "condition": est.condition,
                "fault_coverage": {f"{r:g}": c
                                   for r, c in est.fault_coverage.items()},
                "defect_coverage": est.defect_coverage,
                "dpm": est.dpm,
                "dpm_normalised": est.dpm_normalised,
            }
            for est in report.estimates
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def write_shmoo_csv(plot: ShmooPlot, path: str | Path) -> None:
    """Shmoo grid in long format: one row per (vdd, period) point."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["vdd_v", "period_s", "passed"])
        for i, vdd in enumerate(plot.voltages):
            for j, period in enumerate(plot.periods):
                writer.writerow([float(vdd), float(period),
                                 int(plot.passed[i, j])])


def write_venn_json(venn: VennCounts, path: str | Path,
                    n_devices: int | None = None) -> None:
    """Venn regions as JSON (Figure 11, structured)."""
    payload = {"regions": venn.as_dict(), "total": venn.total}
    if n_devices is not None:
        payload["n_devices"] = n_devices
    Path(path).write_text(json.dumps(payload, indent=1))


def write_plans_csv(plans, path: str | Path) -> None:
    """Test plans (e.g. a Pareto front) as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["conditions", "test_time_s", "defect_coverage",
                         "dpm"])
        for plan in plans:
            writer.writerow(["+".join(plan.conditions), plan.test_time,
                             f"{plan.defect_coverage:.6f}",
                             f"{plan.dpm:.3f}"])
