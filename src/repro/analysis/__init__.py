"""Reporting: text renderings of the paper's tables and figures."""

from repro.analysis.export import (
    write_coverage_csv,
    write_estimator_json,
    write_plans_csv,
    write_shmoo_csv,
    write_venn_json,
)
from repro.analysis.figures import (
    render_frequency_curve,
    render_venn_comparison,
    render_waveforms,
)
from repro.analysis.report import full_report
from repro.analysis.tables import (
    PAPER_TABLE1,
    TABLE1_ORDER,
    render_coverage_matrix,
    render_table1,
)

__all__ = [
    "PAPER_TABLE1",
    "TABLE1_ORDER",
    "full_report",
    "render_coverage_matrix",
    "render_frequency_curve",
    "render_table1",
    "render_venn_comparison",
    "render_waveforms",
    "write_coverage_csv",
    "write_estimator_json",
    "write_plans_csv",
    "write_shmoo_csv",
    "write_venn_json",
]
