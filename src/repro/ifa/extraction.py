"""Bridge and open site extraction from the synthetic layout.

Bridges: adjacent same-layer net pairs from critical-area analysis are
classified into the :class:`~repro.defects.models.BridgeSite` taxonomy by
their net names (storage node vs rail, bit line vs bit line, ...).
Opens: via sites and long wire segments map onto
:class:`~repro.defects.models.OpenSite` classes.

Raw geometric weights from a small synthetic window are structurally
correct but not electrically calibrated; the default ``calibrated=True``
mode rescales the class totals onto the mixes below, which were fitted
so the downstream campaign reproduces the paper's Table 1 pattern (see
DESIGN.md, "Calibration targets").  ``calibrated=False`` exposes the raw
geometry for ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.defects.models import (
    BridgeSite,
    Defect,
    DefectKind,
    OpenSite,
)
from repro.ifa.critical_area import AdjacentPair, find_adjacent_pairs, short_weight
from repro.ifa.layout import SramLayout
from repro.memory.geometry import MemoryGeometry

#: Calibrated bridge site-class mix (fractions of extracted bridge
#: likelihood).  Fitted against the paper's Table 1; the geometric
#: extraction independently confirms the *ordering* (rail adjacency
#: dominates).
BRIDGE_SITE_MIX: dict[BridgeSite, float] = {
    BridgeSite.CELL_NODE_RAIL: 0.7900,
    BridgeSite.CELL_NODE_NODE: 0.0884,
    BridgeSite.DECODER_LOGIC: 0.0661,
    BridgeSite.BITLINE_BITLINE: 0.0239,
    BridgeSite.WORDLINE_CELL: 0.0173,
    BridgeSite.PERIPHERY_METAL: 0.0104,
    BridgeSite.EQUIVALENT_NODE: 0.0039,
}

#: Calibrated open site-class mix.
OPEN_SITE_MIX: dict[OpenSite, float] = {
    OpenSite.BITLINE_SEGMENT: 0.20,
    OpenSite.CELL_ACCESS: 0.15,
    OpenSite.DECODER_INPUT: 0.20,
    OpenSite.CELL_PULLUP: 0.25,
    OpenSite.PERIPHERY_PATH: 0.20,
}

#: Per-class lognormal spread of the site strength factor.  The rail
#: class is tight (every cell sees the same rails); periphery classes
#: are broad (diverse drivers and wire lengths).
STRENGTH_SIGMA: dict[BridgeSite | OpenSite, float] = {
    BridgeSite.CELL_NODE_RAIL: 0.096,
    BridgeSite.CELL_NODE_NODE: 0.70,
    BridgeSite.WORDLINE_CELL: 0.50,
    BridgeSite.BITLINE_BITLINE: 0.50,
    BridgeSite.DECODER_LOGIC: 0.50,
    BridgeSite.PERIPHERY_METAL: 0.40,
    BridgeSite.EQUIVALENT_NODE: 0.10,
    OpenSite.BITLINE_SEGMENT: 0.40,
    OpenSite.CELL_ACCESS: 0.40,
    OpenSite.CELL_PULLUP: 0.40,
    OpenSite.DECODER_INPUT: 0.50,
    OpenSite.PERIPHERY_PATH: 0.40,
}


@dataclass(frozen=True)
class ExtractedSiteClass:
    """Aggregate of one site class after extraction.

    Attributes:
        site: The class.
        weight: Normalised likelihood share.
        pair_count: Number of geometric instances found (bridge pairs or
            vias) in the generated window.
    """

    site: BridgeSite | OpenSite
    weight: float
    pair_count: int


def classify_bridge_pair(pair: AdjacentPair) -> BridgeSite | None:
    """Map a facing net pair onto a bridge site class (None = ignore)."""
    nets = {pair.a.net, pair.b.net}
    names = sorted(nets)

    def has(prefix: str) -> bool:
        return any(n.startswith(prefix) for n in names)

    is_cell_node = [n.startswith("cell[") and (n.endswith(".t") or n.endswith(".c"))
                    for n in names]
    is_rail = [n in ("vdd", "gnd") for n in names]
    if any(is_cell_node) and any(is_rail):
        return BridgeSite.CELL_NODE_RAIL
    if all(is_cell_node):
        return BridgeSite.CELL_NODE_NODE
    if any(n.startswith("wl[") for n in names) and any(is_cell_node):
        return BridgeSite.WORDLINE_CELL
    if sum(n.startswith(("bl[", "blb[")) for n in names) == 2:
        return BridgeSite.BITLINE_BITLINE
    if all(n.startswith("dec.") for n in names):
        return BridgeSite.DECODER_LOGIC
    if all(n.startswith("sa.") for n in names):
        return BridgeSite.PERIPHERY_METAL
    if has("cell[") and any(".bl_contact" in n for n in names):
        return BridgeSite.EQUIVALENT_NODE
    if any(n.startswith("wl[") for n in names) and any(is_rail):
        return BridgeSite.PERIPHERY_METAL
    return None


class IfaExtractor:
    """Extract weighted defect-site populations from a layout.

    Args:
        geometry: Memory organisation (for cell-index assignment and
            replication scaling).
        layout: Pre-built layout; generated from ``geometry`` when
            omitted.
        calibrated: Rescale class totals onto the calibrated mixes.
    """

    def __init__(self, geometry: MemoryGeometry,
                 layout: SramLayout | None = None,
                 calibrated: bool = True) -> None:
        self.geometry = geometry
        self.layout = layout if layout is not None else SramLayout(geometry)
        self.calibrated = calibrated
        self._bridge_classes: list[ExtractedSiteClass] | None = None
        self._open_classes: list[ExtractedSiteClass] | None = None

    # ------------------------------------------------------------------
    def bridge_site_classes(self) -> list[ExtractedSiteClass]:
        """Classified bridge site classes with normalised weights.

        Cached after the first call (the layout is immutable).
        """
        if self._bridge_classes is not None:
            return self._bridge_classes
        pairs = find_adjacent_pairs(self.layout.rects)
        totals: dict[BridgeSite, float] = {}
        counts: dict[BridgeSite, int] = {}
        for pair in pairs:
            site = classify_bridge_pair(pair)
            if site is None:
                continue
            w = short_weight(pair.spacing, pair.facing_length)
            totals[site] = totals.get(site, 0.0) + w
            counts[site] = counts.get(site, 0) + 1
        if self.calibrated:
            weights = {s: BRIDGE_SITE_MIX[s] for s in BRIDGE_SITE_MIX}
        else:
            grand = sum(totals.values()) or 1.0
            weights = {s: w / grand for s, w in totals.items()}
        self._bridge_classes = [
            ExtractedSiteClass(site, weights[site], counts.get(site, 0))
            for site in weights
        ]
        return self._bridge_classes

    def open_site_classes(self) -> list[ExtractedSiteClass]:
        """Classified open site classes with normalised weights (cached)."""
        if self._open_classes is not None:
            return self._open_classes
        kind_map = {
            "cell_pullup": OpenSite.CELL_PULLUP,
            "cell_access": OpenSite.CELL_ACCESS,
            "bitline": OpenSite.BITLINE_SEGMENT,
            "decoder_input": OpenSite.DECODER_INPUT,
            "periphery": OpenSite.PERIPHERY_PATH,
        }
        counts: dict[OpenSite, int] = {}
        for via in self.layout.vias:
            site = kind_map[via.kind]
            counts[site] = counts.get(site, 0) + 1
        if self.calibrated:
            weights = dict(OPEN_SITE_MIX)
        else:
            grand = sum(counts.values()) or 1.0
            weights = {s: c / grand for s, c in counts.items()}
        self._open_classes = [
            ExtractedSiteClass(site, weights.get(site, 0.0),
                               counts.get(site, 0))
            for site in weights
        ]
        return self._open_classes

    # ------------------------------------------------------------------
    def sample_bridges(self, n: int, rng: np.random.Generator,
                       resistance_sampler=None) -> list[Defect]:
        """Draw a population of bridge defects.

        Site class follows the extracted mix; each defect gets a
        per-site strength from the class's lognormal spread, a victim
        cell, a polarity and (optionally) a resistance from
        ``resistance_sampler(rng)``; resistance defaults to 1 kOhm so R
        sweeps can override it.
        """
        classes = self.bridge_site_classes()
        return self._sample(n, rng, classes, DefectKind.BRIDGE,
                            resistance_sampler)

    def sample_opens(self, n: int, rng: np.random.Generator,
                     resistance_sampler=None) -> list[Defect]:
        """Draw a population of open defects (see :meth:`sample_bridges`)."""
        classes = self.open_site_classes()
        return self._sample(n, rng, classes, DefectKind.OPEN,
                            resistance_sampler)

    def sample_batch(self, n: int, rng: np.random.Generator,
                     kind: DefectKind,
                     resistance_distribution=None) -> list[Defect]:
        """Draw ``n`` defects of ``kind`` with one numpy call per attribute.

        The vectorised counterpart of :meth:`sample_bridges` /
        :meth:`sample_opens` used by the streaming experiment engine
        (:mod:`repro.experiment.streaming`): site picks, strengths,
        cells, polarities and resistances are each drawn as one array,
        so per-defect cost is a few microseconds instead of the scalar
        path's ~175 us.  The attribute *marginals* match the scalar
        path but the RNG consumption order differs (array-per-attribute
        vs interleaved per defect), so given the same generator state
        the two paths yield different -- equally valid -- populations;
        deterministic substream seeding, not stream splicing, is the
        reproducibility contract here.

        Args:
            n: Population size; ``0`` returns an empty list.
            rng: Source generator.
            kind: ``DefectKind.BRIDGE`` or ``DefectKind.OPEN``.
            resistance_distribution: Optional
                :class:`~repro.defects.distribution.ResistanceDistribution`;
                resistances default to 1 kOhm when omitted (matching the
                scalar samplers' default).
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return []
        classes = (self.bridge_site_classes() if kind is DefectKind.BRIDGE
                   else self.open_site_classes())
        sites = [c.site for c in classes]
        probs = np.array([c.weight for c in classes], dtype=float)
        probs = probs / probs.sum()
        picks = rng.choice(len(sites), size=n, p=probs)
        sigmas = np.array([STRENGTH_SIGMA[s] for s in sites], dtype=float)
        strengths = np.exp(rng.normal(0.0, 1.0, size=n) * sigmas[picks])
        cells = rng.integers(0, self.geometry.bits, size=n)
        polarities = np.where(rng.random(n) < 0.5, -1, 1)
        if resistance_distribution is not None:
            resistances = np.asarray(
                resistance_distribution.sample(rng, n), dtype=float)
        else:
            resistances = np.full(n, 1e3)
        return [
            Defect(kind, sites[int(picks[i])], float(resistances[i]),
                   strength=float(strengths[i]), cell=int(cells[i]),
                   weight=1.0, polarity=int(polarities[i]))
            for i in range(n)
        ]

    def _sample(self, n: int, rng: np.random.Generator,
                classes: list[ExtractedSiteClass], kind: DefectKind,
                resistance_sampler) -> list[Defect]:
        if n <= 0:
            raise ValueError("n must be positive")
        sites = [c.site for c in classes]
        probs = np.array([c.weight for c in classes], dtype=float)
        probs = probs / probs.sum()
        picks = rng.choice(len(sites), size=n, p=probs)
        out: list[Defect] = []
        for i in picks:
            site = sites[int(i)]
            sigma = STRENGTH_SIGMA[site]
            strength = float(np.exp(rng.normal(0.0, sigma)))
            cell = int(rng.integers(0, self.geometry.bits))
            polarity = -1 if rng.random() < 0.5 else 1
            resistance = (float(resistance_sampler(rng))
                          if resistance_sampler is not None else 1e3)
            out.append(Defect(kind, site, resistance, strength=strength,
                              cell=cell, weight=1.0, polarity=polarity))
        return out
