"""Critical-area computation for shorts and opens.

Classic inductive-fault-analysis machinery [Shen/Maly/Ferguson 85]: for a
circular spot defect of diameter ``x``, the *critical area* ``A(x)`` is
the region where the defect centre causes a fault.  Integrating over the
defect size distribution (the standard ``k / x^3`` tail) yields a
per-site likelihood weight:

* **shorts** between two parallel edges of length ``L`` at spacing
  ``s``: ``A(x) = L * (x - s)`` for ``x > s``, giving weight
  ``w = ∫ A(x) k x^-3 dx = k * L / (2 s)``;
* **opens** cutting a wire of width ``w_w`` and length ``L``:
  ``A(x) = L * (x - w_w)`` for ``x > w_w``, weight ``k * L / (2 w_w)``
  -- plus per-via weights for via/contact opens.

Only relative weights matter downstream (they are normalised into a
probability mix), so ``k`` is taken as 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ifa.layout import Rect


@dataclass(frozen=True)
class AdjacentPair:
    """Two same-layer rectangles facing each other.

    Attributes:
        a, b: The rectangles.
        spacing: Edge-to-edge distance (um).
        facing_length: Overlap length of the facing edges (um).
    """

    a: Rect
    b: Rect
    spacing: float
    facing_length: float


def short_weight(spacing: float, facing_length: float) -> float:
    """Relative likelihood of a short between two facing edges."""
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    if facing_length <= 0:
        return 0.0
    return facing_length / (2.0 * spacing)


def open_weight(width: float, length: float) -> float:
    """Relative likelihood of an open cutting a wire segment."""
    if width <= 0:
        raise ValueError("width must be positive")
    if length <= 0:
        return 0.0
    return length / (2.0 * width)


def find_adjacent_pairs(rects: list[Rect], max_spacing: float = 1.0,
                        ) -> list[AdjacentPair]:
    """All same-layer, different-net facing pairs within ``max_spacing``.

    A simple O(n^2) sweep per layer (the generated layouts are small);
    both horizontal and vertical adjacency are considered, taking the
    orientation with the larger facing length.
    """
    by_layer: dict[str, list[Rect]] = {}
    for r in rects:
        by_layer.setdefault(r.layer, []).append(r)

    pairs: list[AdjacentPair] = []
    for layer_rects in by_layer.values():
        n = len(layer_rects)
        for i in range(n):
            for j in range(i + 1, n):
                a, b = layer_rects[i], layer_rects[j]
                if a.net == b.net:
                    continue
                pair = _facing(a, b, max_spacing)
                if pair is not None:
                    pairs.append(pair)
    return pairs


def _facing(a: Rect, b: Rect, max_spacing: float) -> AdjacentPair | None:
    """Geometric adjacency test for two rectangles."""
    # Horizontal gap (a left of b or vice versa) with vertical overlap.
    gap_x = max(b.x0 - a.x1, a.x0 - b.x1)
    overlap_y = min(a.y1, b.y1) - max(a.y0, b.y0)
    # Vertical gap with horizontal overlap.
    gap_y = max(b.y0 - a.y1, a.y0 - b.y1)
    overlap_x = min(a.x1, b.x1) - max(a.x0, b.x0)

    candidates = []
    if 0.0 < gap_x <= max_spacing and overlap_y > 0.0:
        candidates.append((gap_x, overlap_y))
    if 0.0 < gap_y <= max_spacing and overlap_x > 0.0:
        candidates.append((gap_y, overlap_x))
    if not candidates:
        return None
    spacing, length = max(candidates, key=lambda c: c[1])
    return AdjacentPair(a, b, spacing, length)


def total_short_weight(pairs: list[AdjacentPair]) -> float:
    return sum(short_weight(p.spacing, p.facing_length) for p in pairs)
