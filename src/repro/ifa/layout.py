"""Synthetic SRAM layout for inductive fault analysis.

The paper extracts bridge and open sites from the real layout with a
Philips-internal tool (PIA).  Without that layout we generate a
*structurally faithful* synthetic one: a 6T-cell tile (storage nodes,
rails, word line, bit-line pair) stepped into an array, a row-decoder
strip and a sense-amp/periphery strip -- enough geometry that
critical-area extraction produces the right *kinds* of neighbouring-net
pairs with believable relative weights.

Geometry is expressed in micrometres on named layers matching
:class:`repro.circuit.technology.Technology.layers`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.geometry import MemoryGeometry


@dataclass(frozen=True)
class Rect:
    """An axis-aligned layout rectangle carrying a net.

    Attributes:
        layer: Layer name ("poly", "metal1", ...).
        x0, y0, x1, y1: Corners in um (x0 < x1, y0 < y1).
        net: Net name; site classification keys off its structure, e.g.
            ``cell[12,3].t``, ``vdd``, ``wl[7]``, ``bl[5]``.
    """

    layer: str
    x0: float
    y0: float
    x1: float
    y1: float
    net: str

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"degenerate rectangle on {self.net}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height


@dataclass(frozen=True)
class Via:
    """A via/contact site (candidate for a resistive open).

    Attributes:
        x, y: Position in um.
        net: The net the via belongs to.
        kind: Structural role ("cell_pullup", "bitline", "decoder_input",
            "cell_access", "periphery") used for open-site
            classification.
    """

    x: float
    y: float
    net: str
    kind: str


@dataclass(frozen=True)
class CellTileSpec:
    """Dimensions of the 6T cell tile (um), 0.18 um-generation defaults.

    The tile is ~1.6 x 1.2 um (~2 um^2), matching the area assumption of
    :meth:`repro.memory.geometry.MemoryGeometry.array_area_um2`.
    """

    width: float = 1.6
    height: float = 1.2
    node_width: float = 0.30
    node_spacing: float = 0.25
    rail_width: float = 0.20
    bitline_width: float = 0.24
    bitline_spacing: float = 0.28
    wordline_width: float = 0.18


class SramLayout:
    """Synthetic layout of one SRAM block.

    Args:
        geometry: Memory organisation (rows x bitline-pairs).
        tile: Cell tile dimensions.
        max_rows / max_cols: Cap on the *generated* array window.  The
            statistical structure of the layout is periodic, so a modest
            window is enough for extraction; weights are scaled back up
            by :attr:`replication_factor`.
    """

    def __init__(self, geometry: MemoryGeometry,
                 tile: CellTileSpec | None = None,
                 max_rows: int = 16, max_cols: int = 16) -> None:
        self.geometry = geometry
        self.tile = tile if tile is not None else CellTileSpec()
        self.gen_rows = min(geometry.rows, max_rows)
        self.gen_cols = min(geometry.bitlines_per_block, max_cols)
        self.rects: list[Rect] = []
        self.vias: list[Via] = []
        self._build()

    @property
    def replication_factor(self) -> float:
        """How many real cells each generated cell stands for."""
        real = self.geometry.rows * self.geometry.bitlines_per_block
        return (real / (self.gen_rows * self.gen_cols)) * self.geometry.blocks

    def _build(self) -> None:
        t = self.tile
        for row in range(self.gen_rows):
            y0 = row * t.height
            # Word line spanning the row (poly).
            self.rects.append(Rect(
                "poly", 0.0, y0 + 0.5 * t.height - t.wordline_width / 2,
                self.gen_cols * t.width,
                y0 + 0.5 * t.height + t.wordline_width / 2, f"wl[{row}]"))
            for col in range(self.gen_cols):
                self._build_cell(row, col)
        # Bit lines (metal2, vertical, one per column) and their pair
        # spacing; the complement line of the pair runs alongside.
        for col in range(self.gen_cols):
            x0 = col * t.width + 0.2
            self.rects.append(Rect(
                "metal2", x0, 0.0, x0 + t.bitline_width,
                self.gen_rows * t.height, f"bl[{col}]"))
            xb = x0 + t.bitline_width + t.bitline_spacing
            self.rects.append(Rect(
                "metal2", xb, 0.0, xb + t.bitline_width,
                self.gen_rows * t.height, f"blb[{col}]"))
        # Supply rails (metal1, horizontal, shared between cell rows).
        for row in range(self.gen_rows + 1):
            y = row * t.height
            net = "vdd" if row % 2 == 0 else "gnd"
            self.rects.append(Rect(
                "metal1", 0.0, y - t.rail_width / 2,
                self.gen_cols * t.width, y + t.rail_width / 2, net))
        self._build_decoder_strip()
        self._build_periphery_strip()

    def _build_cell(self, row: int, col: int) -> None:
        t = self.tile
        x0 = col * t.width
        y0 = row * t.height
        cx = x0 + t.width / 2
        # True and complement storage nodes (diff/metal1 islands).
        self.rects.append(Rect(
            "metal1", cx - t.node_spacing / 2 - t.node_width,
            y0 + 0.2, cx - t.node_spacing / 2, y0 + t.height - 0.2,
            f"cell[{row},{col}].t"))
        self.rects.append(Rect(
            "metal1", cx + t.node_spacing / 2,
            y0 + 0.2, cx + t.node_spacing / 2 + t.node_width,
            y0 + t.height - 0.2, f"cell[{row},{col}].c"))
        # Vias: pull-up contacts, access contacts.
        self.vias.append(Via(cx - t.node_spacing / 2 - t.node_width / 2,
                             y0 + t.height - 0.25,
                             f"cell[{row},{col}].t", "cell_pullup"))
        self.vias.append(Via(cx + t.node_spacing / 2 + t.node_width / 2,
                             y0 + 0.25,
                             f"cell[{row},{col}].c", "cell_access"))
        self.vias.append(Via(x0 + 0.25, y0 + t.height / 2,
                             f"cell[{row},{col}].bl_contact", "bitline"))

    def _build_decoder_strip(self) -> None:
        """Row-decoder strip to the left of the array: one gate stack per
        generated row plus shared address-phase wiring."""
        t = self.tile
        x_base = -4.0
        for row in range(self.gen_rows):
            y0 = row * t.height
            self.rects.append(Rect(
                "poly", x_base, y0 + 0.2, x_base + 2.6, y0 + 0.5,
                f"dec.nand[{row}]"))
            self.rects.append(Rect(
                "metal1", x_base, y0 + 0.6, x_base + 2.6, y0 + 0.9,
                f"dec.wldrv[{row}]"))
            self.vias.append(Via(x_base + 1.3, y0 + 0.35,
                                 f"dec.addr_in[{row % 4}]", "decoder_input"))
        # Address phase lines running the strip's height.
        for bit in range(4):
            x = x_base - 0.6 - bit * 0.5
            self.rects.append(Rect(
                "metal2", x, 0.0, x + 0.24, self.gen_rows * t.height,
                f"dec.a[{bit}]"))

    def _build_periphery_strip(self) -> None:
        """Sense-amp / IO strip below the array."""
        t = self.tile
        y_base = -3.0
        for col in range(self.gen_cols):
            x0 = col * t.width
            self.rects.append(Rect(
                "metal1", x0 + 0.1, y_base, x0 + 0.6, y_base + 2.2,
                f"sa.in[{col}]"))
            self.rects.append(Rect(
                "metal1", x0 + 0.9, y_base, x0 + 1.4, y_base + 2.2,
                f"sa.out[{col}]"))
            self.vias.append(Via(x0 + 0.35, y_base + 1.0, f"sa.in[{col}]",
                                 "periphery"))

    # ------------------------------------------------------------------
    def rects_on_layer(self, layer: str) -> list[Rect]:
        return [r for r in self.rects if r.layer == layer]

    def stats(self) -> dict[str, int]:
        """Counts per layer plus via kinds (for reports and tests)."""
        out: dict[str, int] = {}
        for r in self.rects:
            out[f"rect[{r.layer}]"] = out.get(f"rect[{r.layer}]", 0) + 1
        for v in self.vias:
            out[f"via[{v.kind}]"] = out.get(f"via[{v.kind}]", 0) + 1
        return out
