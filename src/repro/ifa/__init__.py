"""Inductive fault analysis: synthetic layout, critical area, extraction.

Stands in for the paper's layout-based IFA flow (PIA + bridge/open
extraction): a structurally faithful synthetic SRAM layout, classic
critical-area weighting, site classification onto the defect taxonomy,
and the one-defect-at-a-time coverage campaign that fills the estimator's
pre-calculated database.
"""

from repro.ifa.critical_area import (
    AdjacentPair,
    find_adjacent_pairs,
    open_weight,
    short_weight,
    total_short_weight,
)
from repro.ifa.extraction import (
    BRIDGE_SITE_MIX,
    OPEN_SITE_MIX,
    STRENGTH_SIGMA,
    ExtractedSiteClass,
    IfaExtractor,
    classify_bridge_pair,
)
from repro.ifa.flow import TABLE1_RESISTANCES, CoverageRecord, IfaCampaign
from repro.ifa.layout import CellTileSpec, Rect, SramLayout, Via

__all__ = [
    "AdjacentPair",
    "BRIDGE_SITE_MIX",
    "CellTileSpec",
    "CoverageRecord",
    "ExtractedSiteClass",
    "IfaCampaign",
    "IfaExtractor",
    "OPEN_SITE_MIX",
    "Rect",
    "STRENGTH_SIGMA",
    "SramLayout",
    "TABLE1_RESISTANCES",
    "Via",
    "classify_bridge_pair",
    "find_adjacent_pairs",
    "open_weight",
    "short_weight",
    "total_short_weight",
]
