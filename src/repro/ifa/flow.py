"""The IFA campaign: extract sites, inject defects, record detections.

This is the library's rendition of the paper's Figure 2 flow.  The
extraction step supplies a weighted site population; the campaign sweeps
every site over a resistance grid and the stress conditions, asks the
behavioural model (the distilled analogue simulation) whether each
(site, R, condition) combination is detected, and emits
:class:`CoverageRecord` rows.  Those rows are the "database with
pre-calculated simulation results" of the paper's Section 3 -- the
estimator (:mod:`repro.core.estimator`) interpolates them instead of
re-running simulations.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.circuit.technology import Technology
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import Defect, DefectKind
from repro.ifa.extraction import IfaExtractor
from repro.memory.geometry import MemoryGeometry
from repro.stress import StressCondition


@dataclass(frozen=True)
class CoverageRecord:
    """Detected fraction of a defect population at one (R, condition).

    Attributes:
        kind: "bridge" or "open".
        resistance: Defect resistance of the sweep point (ohms).
        condition: Stress-condition name.
        vdd: Supply voltage of the condition.
        period: Clock period of the condition.
        detected: Number of detected sites.
        total: Population size.
        errors: Sites whose behavioural evaluation kept raising and
            were quarantined by the runner (see ``docs/robustness.md``);
            they are counted in neither ``detected`` nor the coverage
            numerator, so coverage degrades conservatively.
    """

    kind: str
    resistance: float
    condition: str
    vdd: float
    period: float
    detected: int
    total: int
    errors: int = 0

    @property
    def coverage(self) -> float:
        return self.detected / self.total if self.total else 0.0

    @property
    def percent(self) -> float:
        return 100.0 * self.coverage


class IfaCampaign:
    """One-defect-at-a-time coverage campaign over extracted sites.

    Args:
        geometry: Memory organisation.
        tech: Technology corner.
        behavior: Behavioural defect model (default built from ``tech``).
        extractor: Site extractor (default built from ``geometry``).
        n_sites: Sampled site-population size per sweep (statistical
            resolution of the coverage percentages; 2000 gives ~±1 %).
        seed: RNG seed (campaigns are deterministic given the seed).
    """

    def __init__(self, geometry: MemoryGeometry, tech: Technology,
                 behavior: DefectBehaviorModel | None = None,
                 extractor: IfaExtractor | None = None,
                 n_sites: int = 2000, seed: int = 2005) -> None:
        if n_sites <= 0:
            raise ValueError("n_sites must be positive")
        self.geometry = geometry
        self.tech = tech
        self.behavior = (behavior if behavior is not None
                         else DefectBehaviorModel(tech))
        self.extractor = (extractor if extractor is not None
                          else IfaExtractor(geometry))
        self.n_sites = n_sites
        self.seed = seed
        self._bridge_pop: list[Defect] | None = None
        self._open_pop: list[Defect] | None = None

    # ------------------------------------------------------------------
    def bridge_population(self) -> list[Defect]:
        """The sampled bridge-site population (R placeholder = 1 kOhm).

        Sampling is deterministic given the seed, so the population is
        memoised after the first call (critical-area extraction and
        sampling dominate short campaigns otherwise); callers get a
        fresh list each time, the Defect instances are frozen.
        """
        if self._bridge_pop is None:
            rng = np.random.default_rng(self.seed)
            self._bridge_pop = self.extractor.sample_bridges(
                self.n_sites, rng)
        return list(self._bridge_pop)

    def open_population(self) -> list[Defect]:
        if self._open_pop is None:
            rng = np.random.default_rng(self.seed + 1)
            self._open_pop = self.extractor.sample_opens(
                self.n_sites, rng)
        return list(self._open_pop)

    # ------------------------------------------------------------------
    def run(self, resistances: Sequence[float],
            conditions: Iterable[StressCondition],
            kind: DefectKind = DefectKind.BRIDGE,
            checkpoint_path=None, runner=None,
            workers: int = 1, cache=None,
            strategy: str = "exact") -> list[CoverageRecord]:
        """Sweep the population over R x conditions.

        Every sampled site keeps its identity (class, strength, cell)
        across the sweep, exactly like re-simulating the same extracted
        defect at a different resistance/corner in the paper's flow.

        Execution is chunked through :class:`repro.runner.campaign.
        CampaignRunner`: one work unit per (R, condition) cell,
        per-site retry with quarantine, and -- when ``checkpoint_path``
        is given -- crash-safe persistence so a killed campaign resumes
        from the last completed unit.  ``workers`` and ``cache`` feed
        the :mod:`repro.perf` layer: a process pool over the pending
        units and a content-addressed cache of already-simulated
        points, both with byte-identical records
        (``docs/performance.md``).

        Args:
            resistances: Resistance grid (must be non-empty, positive).
            conditions: Stress conditions (must be non-empty).
            kind: Defect kind of the sweep.
            checkpoint_path: Optional checkpoint file enabling
                kill/resume for this sweep.
            runner: Pre-configured
                :class:`~repro.runner.campaign.CampaignRunner` (for
                custom retry policies, chaos injection or shared
                checkpoints); overrides ``checkpoint_path``,
                ``workers``, ``cache`` and ``strategy``.
            workers: Evaluation processes (1 = serial).
            cache: Optional :class:`~repro.perf.cache.EvaluationCache`
                or cache-file path.
            strategy: ``"exact"``, ``"frontier"`` (the monotone
                threshold sweep solver, :mod:`repro.perf.frontier`) or
                ``"batch"`` (the vectorised group evaluator,
                :mod:`repro.perf.batch`); records are byte-identical
                in all three.

        Raises:
            ValueError: empty ``resistances`` or ``conditions``, or a
                non-positive resistance -- an empty sweep used to
                return an empty record list that only broke the
                estimator much later.
        """
        from repro.runner.campaign import CampaignRunner, SweepSpec

        spec = SweepSpec.of(kind, resistances, conditions)
        if runner is None:
            runner = CampaignRunner(self, checkpoint_path=checkpoint_path,
                                    workers=workers, cache=cache,
                                    strategy=strategy)
        return runner.run([spec]).records

    def run_bridges(self, resistances: Sequence[float],
                    conditions: Iterable[StressCondition],
                    ) -> list[CoverageRecord]:
        """Bridge campaign (the paper's Table 1 axis)."""
        return self.run(resistances, conditions, DefectKind.BRIDGE)

    def run_opens(self, resistances: Sequence[float],
                  conditions: Iterable[StressCondition],
                  ) -> list[CoverageRecord]:
        """Open campaign (the paper's Section 4.2/4.3 axis)."""
        return self.run(resistances, conditions, DefectKind.OPEN)


#: The four bridge resistances of the paper's Table 1.
TABLE1_RESISTANCES = (20.0, 1e3, 10e3, 90e3)
