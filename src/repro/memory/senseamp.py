"""Sense amplifier: differential sensing margin model.

The sense amplifier decides the read value from the differential voltage
the cell develops on the bit-line pair before the sense strobe.  Its two
parameters drive the stress-condition behaviour of reads:

* the input offset/margin ``v_offset`` -- a read fails when the developed
  differential stays below it (weak cells, resistive defects in the read
  path, short develop time);
* the strobe time -- set by the clock period and the timing chain, so
  the available develop window shrinks at speed.

The model is deliberately first-order (linear bit-line discharge by the
cell read current); what matters for the reproduction is the *scaling*
of the differential with Vdd, defect resistance and period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.technology import Technology


@dataclass(frozen=True)
class SenseAmp:
    """Differential latch-type sense amplifier.

    Attributes:
        tech: Technology corner.
        v_offset: Worst-case input offset (V): minimum differential for a
            correct decision.
        bitline_capacitance: Bit-line capacitance (F) the cell must
            discharge.
        develop_fraction: Fraction of the clock period available for
            signal development before the strobe.
    """

    tech: Technology
    v_offset: float = 0.08
    bitline_capacitance: float = 150e-15
    develop_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.v_offset <= 0:
            raise ValueError("v_offset must be positive")
        if self.bitline_capacitance <= 0:
            raise ValueError("bitline_capacitance must be positive")
        if not 0 < self.develop_fraction <= 1:
            raise ValueError("develop_fraction must be in (0, 1]")

    def develop_time(self, period: float) -> float:
        """Signal-development window for a clock period."""
        if period <= 0:
            raise ValueError("period must be positive")
        return self.develop_fraction * period

    def differential(self, read_current: float, period: float) -> float:
        """Bit-line differential developed by a cell read current.

        Linear discharge: ``dV = I_read * t_develop / C_bl``, clamped to
        the full swing.
        """
        if read_current < 0:
            raise ValueError("read_current must be non-negative")
        dv = read_current * self.develop_time(period) / self.bitline_capacitance
        return min(dv, self.tech.vdd_max)

    def resolves(self, read_current: float, period: float) -> bool:
        """Does the sense amp read correctly given the cell current?"""
        return self.differential(read_current, period) >= self.v_offset

    def minimum_current(self, period: float) -> float:
        """Smallest cell read current that still reads correctly."""
        return self.v_offset * self.bitline_capacitance / self.develop_time(period)

    def critical_period(self, read_current: float) -> float:
        """Shortest clock period at which ``read_current`` still reads
        correctly -- the per-cell component of the access-time shmoo
        boundary."""
        if read_current <= 0:
            return float("inf")
        return (self.v_offset * self.bitline_capacitance
                / (self.develop_fraction * read_current))
