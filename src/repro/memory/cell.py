"""The 6T SRAM cell: netlist builder and electrical analysis.

The cell model serves two purposes:

* Build the transistor-level netlist of a 6T cell (with word line, bit
  lines and optional defects) for the Spice-like solver -- this is the
  unit the paper's IFA flow simulates per injected defect.
* Closed-form, first-order electrical figures of merit (static noise
  margin, critical bridge resistance, read current) used to calibrate the
  fast behavioural defect models in :mod:`repro.defects.behavior` so that
  population-scale campaigns do not need per-cycle Newton solves.

Node naming convention inside one cell: ``t`` (true storage node), ``c``
(complement node), ``bl``/``blb`` (bit lines), ``wl`` (word line) -- all
prefixed by the cell instance name.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.devices import Capacitor, Mosfet, MosType, VoltageSource
from repro.circuit.netlist import Netlist
from repro.circuit.solver import ConvergenceError, dc_operating_point, transient
from repro.circuit.technology import Technology


@dataclass(frozen=True)
class CellRatios:
    """Transistor sizing of a 6T cell.

    Typical embedded-SRAM sizing: pull-down strongest, access in between,
    pull-up weakest.  The ratios determine read stability (beta ratio =
    pull-down / access) and writability (gamma ratio = access / pull-up).

    Attributes:
        pull_down: NMOS driver width multiplier.
        access: NMOS pass-gate width multiplier.
        pull_up: PMOS load width multiplier.
    """

    pull_down: float = 2.0
    access: float = 1.2
    pull_up: float = 1.0

    def __post_init__(self) -> None:
        if min(self.pull_down, self.access, self.pull_up) <= 0:
            raise ValueError("transistor widths must be positive")

    @property
    def beta(self) -> float:
        """Cell beta (read-stability) ratio."""
        return self.pull_down / self.access

    @property
    def gamma(self) -> float:
        """Cell gamma (writability) ratio."""
        return self.access / self.pull_up


class SixTCell:
    """A 6T SRAM cell bound to a technology and sizing.

    Args:
        tech: Process corner.
        ratios: Transistor sizing.
        name: Instance prefix for netlist node/device names.
    """

    def __init__(self, tech: Technology, ratios: CellRatios | None = None,
                 name: str = "cell") -> None:
        self.tech = tech
        self.ratios = ratios if ratios is not None else CellRatios()
        self.name = name

    # ------------------------------------------------------------------
    # Netlist construction
    # ------------------------------------------------------------------
    def node(self, suffix: str) -> str:
        return f"{self.name}.{suffix}"

    def build(self, netlist: Netlist, vdd_node: str = "vdd") -> None:
        """Add the six transistors of this cell to ``netlist``.

        External nodes: ``<name>.t``, ``<name>.c`` (storage),
        ``<name>.bl``, ``<name>.blb`` (bit lines), ``<name>.wl``
        (word line); supply comes from ``vdd_node``.
        """
        t, c = self.node("t"), self.node("c")
        bl, blb, wl = self.node("bl"), self.node("blb"), self.node("wl")
        r = self.ratios
        tech = self.tech
        n = self.name
        netlist.extend([
            # Cross-coupled inverter pair.
            Mosfet(f"{n}.MPU_T", MosType.PMOS, t, c, vdd_node, r.pull_up, tech),
            Mosfet(f"{n}.MPD_T", MosType.NMOS, t, c, "0", r.pull_down, tech),
            Mosfet(f"{n}.MPU_C", MosType.PMOS, c, t, vdd_node, r.pull_up, tech),
            Mosfet(f"{n}.MPD_C", MosType.NMOS, c, t, "0", r.pull_down, tech),
            # Access transistors.
            Mosfet(f"{n}.MAX_T", MosType.NMOS, bl, wl, t, r.access, tech),
            Mosfet(f"{n}.MAX_C", MosType.NMOS, blb, wl, c, r.access, tech),
        ])

    def standalone_netlist(self, vdd: float, state: int,
                           wordline_on: bool = False,
                           bitline_voltage: float | None = None) -> Netlist:
        """A self-contained cell netlist with supply and terminal drivers.

        Args:
            vdd: Supply voltage.
            state: Stored value seeding the bistable solve (1 -> ``t``
                high).
            wordline_on: Drive the word line to vdd (access condition).
            bitline_voltage: Voltage forced on both bit lines (defaults to
                vdd, the precharge condition).

        Returns:
            Netlist ready for DC/transient analysis.
        """
        nl = Netlist(f"{self.name}@{vdd:.2f}V")
        nl.add(VoltageSource("Vdd", "vdd", "0", vdd))
        self.build(nl, "vdd")
        blv = vdd if bitline_voltage is None else bitline_voltage
        nl.add(VoltageSource("Vwl", self.node("wl"), "0",
                             vdd if wordline_on else 0.0))
        nl.add(VoltageSource("Vbl", self.node("bl"), "0", blv))
        nl.add(VoltageSource("Vblb", self.node("blb"), "0", blv))
        # Storage-node capacitances (junction + gate loading).  Besides
        # realism they let the transient-settle fallback of solve_state
        # walk the cell to a *stable* equilibrium when the DC solve lands
        # near the saddle point of a nearly-critical defect.
        nl.add(Capacitor("Ct", self.node("t"), "0",
                         4.0 * self.tech.junction_capacitance))
        nl.add(Capacitor("Cc", self.node("c"), "0",
                         4.0 * self.tech.junction_capacitance))
        return nl

    def seed(self, state: int, vdd: float) -> dict[str, float]:
        """Initial node voltages selecting the stored state."""
        t_v = vdd if state else 0.0
        return {self.node("t"): t_v, self.node("c"): vdd - t_v}

    # ------------------------------------------------------------------
    # Electrical analysis
    # ------------------------------------------------------------------
    def solve_state(self, vdd: float, state: int,
                    extra: Netlist | None = None) -> dict[str, float]:
        """DC solution of the (optionally defective) cell holding ``state``.

        Args:
            vdd: Supply.
            state: Seeded stored value.
            extra: A pre-built netlist to solve instead of the pristine
                standalone cell (e.g. one returned by
                ``standalone_netlist(...).with_bridge(...)``).
        """
        nl = extra if extra is not None else self.standalone_netlist(vdd, state)
        seed = self.seed(state, vdd)
        try:
            return dc_operating_point(nl, initial=seed)
        except ConvergenceError:
            # Near-critical defects put the DC solution close to the
            # cell's saddle point where Newton stalls; integrate the
            # actual settling dynamics instead (the storage-node caps in
            # standalone_netlist provide the time constants).
            waves = transient(nl, t_stop=5e-9, dt=2.5e-11, initial=seed,
                              uic=True)
            return {node: wf.settle_value() for node, wf in waves.items()}

    def holds_state(self, op: dict[str, float], state: int,
                    vdd: float) -> bool:
        """Interpret a DC solution: does the cell still store ``state``?

        Decision threshold is vdd/2 on both storage nodes, requiring them
        to be complementary.
        """
        t_v, c_v = op[self.node("t")], op[self.node("c")]
        t_bit = 1 if t_v >= vdd / 2 else 0
        c_bit = 1 if c_v >= vdd / 2 else 0
        return t_bit == state and c_bit == (1 - state)

    def retention_upset_resistance(self, vdd: float, state: int,
                                   to_rail: str,
                                   r_lo: float = 1.0,
                                   r_hi: float = 1e9) -> float:
        """Critical bridge resistance that upsets the *held* cell.

        Bisects over the bridge resistance between the high storage node
        and a rail until the stored state flips; this is the quantity
        whose Vdd dependence makes VLV testing effective (paper
        Section 4.1): lower Vdd weakens the restoring transistor, so
        bridges of *higher* resistance become detectable.

        Args:
            vdd: Supply voltage.
            state: Stored value under attack.
            to_rail: ``"gnd"`` bridges the high node to ground;
                ``"vdd"`` bridges the low node to the supply.
            r_lo: Lower bisection bound (certain upset).
            r_hi: Upper bisection bound (certain survival).

        Returns:
            The critical resistance in ohms (bridges below it flip the
            cell).  Returns ``r_hi`` when even that resistance upsets the
            cell, ``r_lo`` when even a hard short does not.
        """
        if to_rail not in ("gnd", "vdd"):
            raise ValueError("to_rail must be 'gnd' or 'vdd'")
        high_node = self.node("t") if state else self.node("c")
        low_node = self.node("c") if state else self.node("t")

        def upset(r: float) -> bool:
            base = self.standalone_netlist(vdd, state)
            if to_rail == "gnd":
                faulty = base.with_bridge(high_node, "0", r)
            else:
                faulty = base.with_bridge(low_node, "vdd", r)
            op = self.solve_state(vdd, state, extra=faulty)
            return not self.holds_state(op, state, vdd)

        if not upset(r_lo):
            return r_lo
        if upset(r_hi):
            return r_hi
        lo, hi = r_lo, r_hi  # upset(lo) True, upset(hi) False
        for _ in range(40):
            mid = math.sqrt(lo * hi)
            if upset(mid):
                lo = mid
            else:
                hi = mid
            if hi / lo < 1.02:
                break
        return math.sqrt(lo * hi)

    def read_current(self, vdd: float) -> float:
        """Cell read current: access + pull-down stack discharging a
        precharged bit line, first-order series combination."""
        r = self.ratios
        acc = Mosfet("tmp_acc", MosType.NMOS, "a", "b", "c", r.access, self.tech)
        pd = Mosfet("tmp_pd", MosType.NMOS, "a", "b", "c", r.pull_down, self.tech)
        i_acc = acc.saturation_current(vdd)
        i_pd = pd.saturation_current(vdd)
        if i_acc <= 0.0 or i_pd <= 0.0:
            return 0.0
        # Series devices: harmonic combination approximates the stack.
        return (i_acc * i_pd) / (i_acc + i_pd)

    def static_noise_margin(self, vdd: float) -> float:
        """First-order hold SNM estimate (volts).

        Uses the classical approximation SNM ~ VT + (vdd - 2 VT) / k for
        a balanced cell; adequate for trend analysis (SNM shrinks roughly
        linearly as vdd drops), which is what the VLV stress-condition
        models need.
        """
        vt = self.tech.vth_n
        if vdd <= vt:
            return 0.0
        headroom = max(0.0, vdd - 2.0 * vt)
        return vt / 2.0 + headroom / (2.0 + 2.0 * self.ratios.beta)
