"""Top-level SRAM model: functional behaviour plus electrical timing.

:class:`Sram` binds the geometry, the 6T cell, the periphery models
(decoder, sense amp, write driver, precharge) and a technology corner
into one device-under-test.  Two faces:

* **functional**: word-oriented read/write with an attachable list of
  cell-level :class:`~repro.faults.models.FunctionalFault` behaviours --
  the march sequencer and virtual tester drive this face cycle by cycle;
* **electrical**: first-order access/cycle time as a function of supply
  voltage, which draws the fault-free shmoo boundary of the paper's
  Figure 3 (the reason VLV testing must run at reduced frequency,
  Section 4.1).

The access-time model is ``t_acc(V) = t_logic(V) + t_wire`` with
``t_logic ∝ V / (V - VT_path)^alpha`` (alpha-power delay scaling of the
critical path) -- calibrated so the nominal access time matches the
paper's memory (5..10 ns at 1.8 V) and the fault-free SRAM still passes
a 100 ns cycle at the 1.0 V VLV condition, as in Figure 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.circuit.technology import Technology
from repro.faults.models import FunctionalFault, MemoryState
from repro.memory.cell import CellRatios, SixTCell
from repro.memory.decoder import RowDecoder
from repro.memory.geometry import MemoryGeometry
from repro.memory.precharge import Precharge
from repro.memory.senseamp import SenseAmp
from repro.memory.writedriver import WriteDriver


@dataclass(frozen=True)
class TimingModel:
    """Calibrated access-time model of the critical path.

    Attributes:
        t_logic_nominal: Logic/cell part of the access time at the
            technology's nominal supply (s).
        t_wire: Supply-independent wire-RC part (s).
        vt_path: Effective threshold of the critical path (V) -- higher
            than a single device VT because of stacking/body effect;
            controls how steeply delay grows at low Vdd.
        alpha: Alpha-power exponent of the path.
    """

    t_logic_nominal: float = 6e-9
    t_wire: float = 2e-9
    vt_path: float = 0.6
    alpha: float = 1.3

    def logic_scale(self, vdd: float, vdd_nominal: float) -> float:
        """Delay multiplier relative to nominal supply."""
        if vdd <= self.vt_path:
            return math.inf

        def shape(v: float) -> float:
            return v / (v - self.vt_path) ** self.alpha

        return shape(vdd) / shape(vdd_nominal)

    def access_time(self, vdd: float, vdd_nominal: float) -> float:
        scale = self.logic_scale(vdd, vdd_nominal)
        if math.isinf(scale):
            return math.inf
        return self.t_logic_nominal * scale + self.t_wire


class Sram:
    """An SRAM instance (one block of the Veqtor4-style test chip).

    Args:
        geometry: Memory organisation.
        tech: Technology corner.
        ratios: 6T cell sizing.
        timing: Calibrated critical-path model.
        name: Instance name (for reports).
    """

    def __init__(
        self,
        geometry: MemoryGeometry,
        tech: Technology,
        ratios: CellRatios | None = None,
        timing: TimingModel | None = None,
        name: str = "sram",
    ) -> None:
        self.geometry = geometry
        self.tech = tech
        self.name = name
        self.ratios = ratios if ratios is not None else CellRatios()
        self.timing = timing if timing is not None else TimingModel()
        self.cell = SixTCell(tech, self.ratios)
        self.decoder = RowDecoder(geometry.row_address_bits, tech)
        self.sense_amp = SenseAmp(tech)
        self.write_driver = WriteDriver(tech, cell_ratios=self.ratios)
        self.precharge = Precharge(tech)
        # Functional state and attached behavioural faults.
        self.state = MemoryState(geometry.bits)
        self.faults: list[FunctionalFault] = []
        self._cycle = 0

    # ------------------------------------------------------------------
    # Electrical timing
    # ------------------------------------------------------------------
    def access_time(self, vdd: float) -> float:
        """Read access time at a supply voltage (s)."""
        return self.timing.access_time(vdd, self.tech.vdd_nominal)

    def min_period(self, vdd: float, margin: float = 1.05) -> float:
        """Shortest passing clock period at ``vdd`` (fault-free)."""
        return margin * self.access_time(vdd)

    def meets_timing(self, vdd: float, period: float) -> bool:
        """Fault-free pass/fail at one (Vdd, period) shmoo point."""
        return period >= self.min_period(vdd)

    # ------------------------------------------------------------------
    # Functional face
    # ------------------------------------------------------------------
    def attach_fault(self, fault: FunctionalFault) -> None:
        """Attach a behavioural fault (cell-level, flat index space)."""
        self.faults.append(fault)

    def clear_faults(self) -> None:
        self.faults.clear()

    def power_cycle(self) -> None:
        """Reset functional state and fault internals (new test run)."""
        self.state.reset()
        for fault in self.faults:
            fault.reset()
        self._cycle = 0

    def write_word(self, address: int, value: int) -> None:
        """Write a word through all attached fault behaviours."""
        width = self.geometry.bits_per_word
        if not 0 <= value < (1 << width):
            raise ValueError(f"word value {value} out of range")
        for bit in range(width):
            cell = self.geometry.cell_index(address, bit)
            self._apply_write(cell, (value >> bit) & 1)
        self._cycle += 1

    def read_word(self, address: int) -> int:
        """Read a word through all attached fault behaviours."""
        value = 0
        for bit in range(self.geometry.bits_per_word):
            cell = self.geometry.cell_index(address, bit)
            if self._apply_read(cell) == 1:
                value |= 1 << bit
        self._cycle += 1
        return value

    def _apply_write(self, cell: int, bit: int) -> None:
        if self.faults:
            for fault in self.faults:
                fault.write(self.state, cell, bit, self._cycle)
        else:
            self.state.set(cell, bit)
            self.state.touch(cell, self._cycle)

    def _apply_read(self, cell: int) -> int:
        if not self.faults:
            self.state.touch(cell, self._cycle)
            return self.state.get(cell)
        # Faults compose: every fault observes the access (side effects
        # run), and a faulty view wins over a clean one so that a
        # non-mutating fault (e.g. a stuck-open's stale sense data) is
        # not masked by a later fault reading the stored state.
        value = 0
        wrong: int | None = None
        for fault in self.faults:
            value = fault.read(self.state, cell, self._cycle)
            if wrong is None and value != self.state.get(cell):
                wrong = value
        return wrong if wrong is not None else value

    def __repr__(self) -> str:
        return (
            f"Sram({self.name!r}, {self.geometry}, tech={self.tech.name}, "
            f"faults={len(self.faults)})"
        )
