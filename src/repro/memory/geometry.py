"""Memory geometry: the four design parameters of the paper's estimator.

The paper's Fault Coverage Estimator takes exactly four user inputs:
``#X rows``, ``#Y columns``, ``#B bits per word`` and the optional number
of ``Z blocks`` (Section 3).  :class:`MemoryGeometry` is that parameter
block plus the derived quantities the rest of the library needs:
address-space size, logical-to-topological mapping (with optional address
scrambling), and the physical array dimensions that drive critical-area
scaling in the IFA flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryGeometry:
    """SRAM organisation.

    The physical bit array of one block is ``rows`` word lines by
    ``columns * bits_per_word`` bit lines: each word occupies
    ``bits_per_word`` cells spread over the column mux groups, as in a
    standard SRAM compiler.

    Attributes:
        rows: Number of word lines (#X).
        columns: Number of words per row, i.e. the column-mux factor (#Y).
        bits_per_word: Word width (#B).
        blocks: Number of identical blocks (#Z, optional in the paper's
            estimator; default 1).
    """

    rows: int
    columns: int
    bits_per_word: int
    blocks: int = 1

    def __post_init__(self) -> None:
        for name in ("rows", "columns", "bits_per_word", "blocks"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def words_per_block(self) -> int:
        return self.rows * self.columns

    @property
    def words(self) -> int:
        return self.words_per_block * self.blocks

    @property
    def bits_per_block(self) -> int:
        return self.rows * self.columns * self.bits_per_word

    @property
    def bits(self) -> int:
        """Total storage bits (the N of a kN march test on bit level)."""
        return self.bits_per_block * self.blocks

    @property
    def bitlines_per_block(self) -> int:
        """Physical columns of one block's array."""
        return self.columns * self.bits_per_word

    @property
    def address_bits(self) -> int:
        """Word-address width (rows x columns x blocks, rounded up)."""
        return max(1, math.ceil(math.log2(self.words)))

    @property
    def row_address_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.rows)))

    @property
    def column_address_bits(self) -> int:
        return max(0, math.ceil(math.log2(self.columns)))

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def split_address(self, word_address: int) -> tuple[int, int, int]:
        """Word address -> (block, row, column)  [row-major within block]."""
        self._check_word_address(word_address)
        block, rest = divmod(word_address, self.words_per_block)
        row, col = divmod(rest, self.columns)
        return block, row, col

    def join_address(self, block: int, row: int, col: int) -> int:
        if not (0 <= block < self.blocks and 0 <= row < self.rows
                and 0 <= col < self.columns):
            raise ValueError(f"coordinates out of range: {(block, row, col)}")
        return (block * self.words_per_block) + row * self.columns + col

    def bit_position(self, word_address: int, bit: int) -> tuple[int, int, int]:
        """Physical position of one data bit: (block, row, bitline).

        Bit *b* of every word in a row sits in column-mux group *b*:
        ``bitline = bit * columns + column`` -- the standard interleaved
        organisation (important for coupling-fault adjacency).
        """
        if not 0 <= bit < self.bits_per_word:
            raise ValueError(f"bit index out of range: {bit}")
        block, row, col = self.split_address(word_address)
        return block, row, bit * self.columns + col

    def cell_index(self, word_address: int, bit: int) -> int:
        """Flat bit-cell index over the whole memory (for the functional
        simulator's one-dimensional cell space)."""
        block, row, bitline = self.bit_position(word_address, bit)
        return (block * self.bits_per_block
                + row * self.bitlines_per_block + bitline)

    def neighbours(self, word_address: int, bit: int) -> list[tuple[int, int]]:
        """Physically adjacent cells of a bit: (word_address, bit) pairs.

        Returns up to four neighbours (left/right on the same word line,
        up/down on the same bit line) -- the aggressor candidates for
        layout-aware coupling faults and bridge extraction.
        """
        block, row, bitline = self.bit_position(word_address, bit)
        result = []
        for r, b in ((row, bitline - 1), (row, bitline + 1),
                     (row - 1, bitline), (row + 1, bitline)):
            if not (0 <= r < self.rows and 0 <= b < self.bitlines_per_block):
                continue
            bit_idx, col = divmod(b, self.columns)
            result.append((self.join_address(block, r, col), bit_idx))
        return result

    def _check_word_address(self, word_address: int) -> None:
        if not 0 <= word_address < self.words:
            raise ValueError(
                f"word address {word_address} out of range [0, {self.words})"
            )

    # ------------------------------------------------------------------
    # Physical dimensions (for IFA critical-area scaling)
    # ------------------------------------------------------------------
    def array_area_um2(self, cell_width_um: float = 1.6,
                       cell_height_um: float = 1.2) -> float:
        """Bit-array silicon area in um^2.

        Default cell dimensions approximate a 0.18 um 6T SRAM cell
        (~2 um^2); used by the yield model ``Y = exp(-A * D0)``.
        """
        return self.bits * cell_width_um * cell_height_um

    def __str__(self) -> str:
        return (
            f"{self.rows}R x {self.columns}C x {self.bits_per_word}B"
            + (f" x {self.blocks}Z" if self.blocks > 1 else "")
            + f" = {self.bits} bits"
        )


#: One SRAM instance of the paper's Veqtor4 test chip: 256 Kbit.
#: Organised 512 rows x 16 words x 32 bits = 262144 bits.
VEQTOR4_INSTANCE = MemoryGeometry(rows=512, columns=16, bits_per_word=32)
