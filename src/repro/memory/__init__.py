"""SRAM model: geometry, 6T cell, periphery and the full device.

Implements the memory under test: the four-parameter geometry of the
paper's estimator (#X rows, #Y columns, #B bits, #Z blocks), the 6T cell
with transistor-level analysis, row decoder (including the resistive-open
behaviours of Figures 5/6), sense amplifier, write driver, precharge, and
the :class:`~repro.memory.sram.Sram` device-under-test binding them all.
"""

from repro.memory.array import UNKNOWN, BitArray
from repro.memory.cell import CellRatios, SixTCell
from repro.memory.decoder import (
    DecoderTiming,
    RowDecoder,
    build_decoder_netlist,
    decoder_input_waveforms,
)
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry
from repro.memory.precharge import Precharge
from repro.memory.scrambling import (
    AddressScrambler,
    DataScrambler,
    ScrambledView,
)
from repro.memory.senseamp import SenseAmp
from repro.memory.sram import Sram, TimingModel
from repro.memory.writedriver import WriteDriver

__all__ = [
    "AddressScrambler",
    "BitArray",
    "CellRatios",
    "DataScrambler",
    "DecoderTiming",
    "MemoryGeometry",
    "Precharge",
    "RowDecoder",
    "ScrambledView",
    "SenseAmp",
    "SixTCell",
    "Sram",
    "TimingModel",
    "UNKNOWN",
    "VEQTOR4_INSTANCE",
    "WriteDriver",
    "build_decoder_netlist",
    "decoder_input_waveforms",
]
