"""Address and data scrambling: logical vs topological views.

Production SRAMs rarely map logical addresses linearly onto physical
rows/columns: decoders fold address bits for routing convenience, and
cell columns alternate true/complement orientation so neighbouring
cells share wells.  Consequences the library must model:

* bitmap diagnosis (paper Section 4) works on *physical* coordinates --
  the tester descrambles logical fail addresses before reasoning about
  neighbourhoods;
* coupling/bridge adjacency lives in physical space: two logically
  distant addresses can be physical neighbours;
* a logical checkerboard background is not a physical checkerboard
  unless the pattern generator is scramble-aware (why data-background
  options exist on real BIST engines).

:class:`AddressScrambler` implements the standard bit-permute + XOR-fold
family (self-inverse XOR stage, explicit inverse for the permutation);
:class:`DataScrambler` models per-column true/complement orientation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.geometry import MemoryGeometry


@dataclass(frozen=True)
class AddressScrambler:
    """Bijective logical-to-physical address mapping.

    physical = permute(logical) XOR xor_mask, where ``permutation[i]``
    names the logical bit feeding physical bit *i*.

    Attributes:
        address_bits: Address width.
        permutation: Tuple of length ``address_bits`` (a permutation of
            ``range(address_bits)``).
        xor_mask: XOR applied after permutation (row-fold scrambling).
    """

    address_bits: int
    permutation: tuple[int, ...] = ()
    xor_mask: int = 0

    def __post_init__(self) -> None:
        if self.address_bits <= 0:
            raise ValueError("address_bits must be positive")
        perm = self.permutation or tuple(range(self.address_bits))
        object.__setattr__(self, "permutation", perm)
        if sorted(perm) != list(range(self.address_bits)):
            raise ValueError(
                f"permutation must rearrange range({self.address_bits})")
        if not 0 <= self.xor_mask < (1 << self.address_bits):
            raise ValueError("xor_mask must fit the address width")

    @property
    def size(self) -> int:
        return 1 << self.address_bits

    def scramble(self, logical: int) -> int:
        """Logical address -> physical address."""
        if not 0 <= logical < self.size:
            raise ValueError(f"address {logical} out of range")
        physical = 0
        for phys_bit, log_bit in enumerate(self.permutation):
            if (logical >> log_bit) & 1:
                physical |= 1 << phys_bit
        return physical ^ self.xor_mask

    def descramble(self, physical: int) -> int:
        """Physical address -> logical address (exact inverse)."""
        if not 0 <= physical < self.size:
            raise ValueError(f"address {physical} out of range")
        unmasked = physical ^ self.xor_mask
        logical = 0
        for phys_bit, log_bit in enumerate(self.permutation):
            if (unmasked >> phys_bit) & 1:
                logical |= 1 << log_bit
        return logical

    @classmethod
    def typical(cls, address_bits: int) -> "AddressScrambler":
        """A representative scramble: swap the two LSBs with the two
        MSBs (column-mux routing) and fold the lowest row pair."""
        if address_bits < 4:
            return cls(address_bits)
        perm = list(range(address_bits))
        perm[0], perm[-1] = perm[-1], perm[0]
        perm[1], perm[-2] = perm[-2], perm[1]
        return cls(address_bits, tuple(perm), xor_mask=0b01)


@dataclass(frozen=True)
class DataScrambler:
    """Per-bitline true/complement cell orientation.

    ``inversion_mask`` bit *b* set means physical column group *b*
    stores the complement of the logical data bit.

    Attributes:
        bits_per_word: Word width.
        inversion_mask: Which data bits are stored inverted.
    """

    bits_per_word: int
    inversion_mask: int = 0

    def __post_init__(self) -> None:
        if self.bits_per_word <= 0:
            raise ValueError("bits_per_word must be positive")
        if not 0 <= self.inversion_mask < (1 << self.bits_per_word):
            raise ValueError("inversion_mask must fit the word width")

    def to_physical(self, word: int) -> int:
        """Logical word -> stored cell values."""
        if not 0 <= word < (1 << self.bits_per_word):
            raise ValueError("word out of range")
        return word ^ self.inversion_mask

    def to_logical(self, stored: int) -> int:
        """Stored cell values -> logical word (involution)."""
        return self.to_physical(stored)

    @classmethod
    def alternating(cls, bits_per_word: int) -> "DataScrambler":
        """Odd data bits inverted -- the common paired-column layout."""
        mask = 0
        for b in range(1, bits_per_word, 2):
            mask |= 1 << b
        return cls(bits_per_word, mask)


@dataclass
class ScrambledView:
    """Logical-access view over a physically organised memory.

    Combines geometry, address scrambling and data scrambling to answer
    the diagnosis-critical questions: which *physical* cell does a
    logical access touch, and which logical addresses are physical
    neighbours.
    """

    geometry: MemoryGeometry
    address: AddressScrambler = field(default=None)  # type: ignore[assignment]
    data: DataScrambler = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.address is None:
            self.address = AddressScrambler(self.geometry.address_bits)
        if self.data is None:
            self.data = DataScrambler(self.geometry.bits_per_word)
        if self.address.size != self.geometry.words:
            # A 2^k scramble folded onto a smaller word count is not
            # injective -- two logical addresses would silently share a
            # cell.  Scrambled views therefore require a power-of-two
            # word count matching the scrambler width exactly.
            raise ValueError(
                f"address scrambler spans {self.address.size} addresses "
                f"but the memory has {self.geometry.words} words; "
                "scrambling requires an exact power-of-two match")

    # ------------------------------------------------------------------
    def physical_cell(self, logical_address: int, bit: int) -> int:
        """Flat physical cell index of a logical (address, bit) access."""
        physical = self.address.scramble(logical_address)
        return self.geometry.cell_index(physical, bit)

    def stored_value(self, logical_address: int, bit: int, value: int) -> int:
        """The level actually stored in the cell for a logical write."""
        word = value << bit
        return (self.data.to_physical(word) >> bit) & 1

    def logical_neighbours(self, logical_address: int, bit: int,
                           ) -> list[tuple[int, int]]:
        """Logical (address, bit) pairs physically adjacent to an access.

        The set a coupling-fault diagnosis must consider -- generally
        *not* logical-address neighbours.
        """
        physical = self.address.scramble(logical_address)
        out = []
        for n_addr, n_bit in self.geometry.neighbours(physical, bit):
            out.append((self.address.descramble(n_addr), n_bit))
        return out
