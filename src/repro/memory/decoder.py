"""Address decoders: functional model, timing model and netlist builder.

Resistive opens in the address decoder are a centrepiece of the paper:
Figure 5/6 show an open injected at the least-significant bit of the row
address decoder that escapes the test at Vnom and VLV but is detected at
Vmax, and the cited [Azimane 04] methodology targets exactly this defect
class.  This module provides

* :class:`RowDecoder` -- functional decode plus a first-order timing
  model whose word-line switching delay degrades with a resistive open on
  one of its address inputs;
* :func:`build_decoder_netlist` -- a transistor-level netlist of a small
  NAND-style decoder slice (pre-decoder inverters + NAND + word-line
  driver), with well-defined device names so opens can be spliced in via
  :meth:`repro.circuit.netlist.Netlist.with_open` -- the circuit used by
  the Figure 5/6 reproduction benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.devices import Capacitor, Mosfet, MosType, VoltageSource
from repro.circuit.netlist import Netlist
from repro.circuit.solver import gate_delay
from repro.circuit.technology import Technology


@dataclass(frozen=True)
class DecoderTiming:
    """Timing summary of one decode path at one supply voltage.

    Attributes:
        select_delay: Address-valid to word-line-rise delay (s).
        deselect_delay: Address-change to word-line-fall delay (s).
        overlap: Worst-case dual-select window with the next word line
            (s); positive values mean two word lines are momentarily
            active together -- the disturb mechanism that makes decoder
            opens Vmax-detectable.
    """

    select_delay: float
    deselect_delay: float
    overlap: float


class RowDecoder:
    """Functional + timing model of a row decoder.

    Args:
        address_bits: Number of row-address inputs.
        tech: Technology corner (for the alpha-power delay model).
        stages: Logic depth of the decode path (pre-decode + NAND +
            driver); sets the nominal delay multiplier.
    """

    def __init__(self, address_bits: int, tech: Technology,
                 stages: int = 4) -> None:
        if address_bits <= 0:
            raise ValueError("address_bits must be positive")
        if stages <= 0:
            raise ValueError("stages must be positive")
        self.address_bits = address_bits
        self.tech = tech
        self.stages = stages

    @property
    def n_rows(self) -> int:
        return 1 << self.address_bits

    def decode(self, address: int) -> int:
        """Functional decode: address -> selected row (identity map)."""
        if not 0 <= address < self.n_rows:
            raise ValueError(f"address {address} out of range")
        return address

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def nominal_delay(self, vdd: float, fanout: float = 8.0) -> float:
        """Fault-free decode delay at a supply voltage.

        The word-line driver sees a large fanout (the word-line wire plus
        one access-gate pair per column), hence the default fanout.
        """
        return self.stages * gate_delay(self.tech, fanout=fanout, vdd=vdd)

    def timing_with_open(self, vdd: float, open_resistance: float,
                         fanout: float = 8.0) -> DecoderTiming:
        """Decode timing with a resistive open on one address input.

        The open in series with the input gate forms an RC with the gate
        capacitance: the affected transition is slowed by
        ``R_open * C_gate``.  Selection (rising) is assumed to go through
        the slowed input; deselection of the *previous* word line goes
        through the complementary (un-slowed) path, so a slowed input
        delays the *fall* of the victim word line relative to the rise of
        the next one, creating a dual-select overlap window.
        """
        if open_resistance < 0:
            raise ValueError("open_resistance must be non-negative")
        nominal = self.nominal_delay(vdd, fanout)
        rc = open_resistance * self.tech.gate_capacitance
        return DecoderTiming(
            select_delay=nominal + rc,
            deselect_delay=nominal + rc,
            overlap=rc,
        )


def build_decoder_netlist(
    tech: Technology,
    vdd: float,
    address_bits: int = 2,
    wordline_load: float = 20e-15,
) -> Netlist:
    """Transistor-level netlist of a NAND row-decoder slice.

    Structure per word line ``wl<i>``: a static CMOS NAND of the
    (possibly inverted) address bits followed by an inverting word-line
    driver.  Address inputs are nodes ``a0..a<k-1>`` driven by voltage
    sources named ``Va0..`` so test benches can attach waveforms;
    inverted phases ``a0b..`` are generated on-chip by inverters
    ``INVA<j>_{P,N}`` -- splicing an open into the LSB inverter input
    (device ``INVA0_P``/``INVA0_N``, terminal ``gate``) reproduces the
    paper's Figure 5/6 defect.

    Returns:
        The fault-free netlist; inject defects with ``with_open`` /
        ``with_bridge``.
    """
    if address_bits < 1 or address_bits > 4:
        raise ValueError("netlist builder supports 1..4 address bits")
    nl = Netlist(f"rowdec{address_bits}@{vdd:.2f}V")
    nl.add(VoltageSource("Vdd", "vdd", "0", vdd))

    # Address inputs and their on-chip complements.
    for j in range(address_bits):
        nl.add(VoltageSource(f"Va{j}", f"a{j}", "0", 0.0))
        nl.add(Mosfet(f"INVA{j}_P", MosType.PMOS, f"a{j}b", f"a{j}", "vdd",
                      2.0, tech))
        nl.add(Mosfet(f"INVA{j}_N", MosType.NMOS, f"a{j}b", f"a{j}", "0",
                      1.0, tech))
        nl.add(Capacitor(f"Ca{j}b", f"a{j}b", "0", 2e-15))

    n_rows = 1 << address_bits
    for row in range(n_rows):
        phases = [
            f"a{j}" if (row >> j) & 1 else f"a{j}b"
            for j in range(address_bits)
        ]
        nand_out = f"nand{row}"
        # PMOS pull-ups in parallel.
        for j, phase in enumerate(phases):
            nl.add(Mosfet(f"NAND{row}_P{j}", MosType.PMOS, nand_out, phase,
                          "vdd", 1.5, tech))
        # NMOS pull-down stack in series.
        prev = nand_out
        for j, phase in enumerate(phases):
            nxt = "0" if j == address_bits - 1 else f"nand{row}_s{j}"
            nl.add(Mosfet(f"NAND{row}_N{j}", MosType.NMOS, prev, phase, nxt,
                          2.0, tech))
            prev = nxt
        nl.add(Capacitor(f"Cnand{row}", nand_out, "0", 1.5e-15))
        # Word-line driver (inverter, upsized).
        nl.add(Mosfet(f"WLDRV{row}_P", MosType.PMOS, f"wl{row}", nand_out,
                      "vdd", 4.0, tech))
        nl.add(Mosfet(f"WLDRV{row}_N", MosType.NMOS, f"wl{row}", nand_out,
                      "0", 2.0, tech))
        nl.add(Capacitor(f"Cwl{row}", f"wl{row}", "0", wordline_load))
    return nl


def decoder_input_waveforms(address_sequence: list[int], period: float,
                            vdd: float, address_bits: int):
    """Per-input PWL stimulus for a sequence of addresses.

    Returns a dict ``input-name -> waveform callable`` where address *i*
    of the sequence is applied during cycle *i* (``[i*period,
    (i+1)*period)``), with fast linear edges at the cycle boundaries.
    """
    from repro.circuit.waveform import piecewise_linear

    if period <= 0:
        raise ValueError("period must be positive")
    edge = min(0.02 * period, 0.2e-9)
    waves = {}
    for j in range(address_bits):
        points = [(0.0, float((address_sequence[0] >> j) & 1) * vdd)]
        for i in range(1, len(address_sequence)):
            prev_bit = (address_sequence[i - 1] >> j) & 1
            bit = (address_sequence[i] >> j) & 1
            t = i * period
            if bit != prev_bit:
                points.append((t, prev_bit * vdd))
                points.append((t + edge, bit * vdd))
        points.append((len(address_sequence) * period, points[-1][1]))
        waves[f"a{j}"] = piecewise_linear(points)
    return waves
