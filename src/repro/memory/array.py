"""Functional bit-array storage for word-oriented SRAM models.

:class:`BitArray` stores the memory content at word granularity on top
of a flat numpy bit vector indexed by the geometry's flat cell index, so
the functional state is shared with the bit-level fault machinery.
"""

from __future__ import annotations

import numpy as np

from repro.memory.geometry import MemoryGeometry

UNKNOWN = -1


class BitArray:
    """Word-addressable storage backed by per-cell bits.

    Args:
        geometry: Memory organisation.
    """

    def __init__(self, geometry: MemoryGeometry) -> None:
        self.geometry = geometry
        self.bits = np.full(geometry.bits, UNKNOWN, dtype=np.int8)

    def reset(self) -> None:
        self.bits.fill(UNKNOWN)

    # ------------------------------------------------------------------
    # Word access
    # ------------------------------------------------------------------
    def write_word(self, address: int, value: int) -> None:
        """Store ``value`` (``bits_per_word`` wide) at a word address."""
        width = self.geometry.bits_per_word
        if not 0 <= value < (1 << width):
            raise ValueError(f"word value {value} out of range for {width} bits")
        for bit in range(width):
            self.bits[self.geometry.cell_index(address, bit)] = (value >> bit) & 1

    def read_word(self, address: int) -> int:
        """Read the word at ``address``; unknown cells read as 0."""
        value = 0
        for bit in range(self.geometry.bits_per_word):
            cell = self.bits[self.geometry.cell_index(address, bit)]
            if cell == 1:
                value |= 1 << bit
        return value

    # ------------------------------------------------------------------
    # Bit access
    # ------------------------------------------------------------------
    def write_bit(self, address: int, bit: int, value: int) -> None:
        if value not in (0, 1):
            raise ValueError("bit value must be 0 or 1")
        self.bits[self.geometry.cell_index(address, bit)] = value

    def read_bit(self, address: int, bit: int) -> int:
        return int(self.bits[self.geometry.cell_index(address, bit)])

    def fill(self, value: int) -> None:
        """Set every cell to a solid value."""
        if value not in (0, 1):
            raise ValueError("fill value must be 0 or 1")
        self.bits.fill(value)

    def count_mismatches(self, other: "BitArray") -> int:
        """Number of differing cells (for bitmap comparison)."""
        if self.geometry != other.geometry:
            raise ValueError("geometries differ")
        return int(np.count_nonzero(self.bits != other.bits))
