"""Write driver and write-path timing model.

The write driver pulls one bit line low (and keeps the other precharged)
hard enough to overpower the cell's pull-up through the access
transistor.  Its figures of merit:

* write margin -- how much weaker the driver may become (e.g. through a
  resistive open in series with the bit line) before the write fails;
* write time -- how fast the cell internal node crosses the trip point,
  which degrades with supply voltage and with series resistance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.devices import Mosfet, MosType
from repro.circuit.technology import Technology
from repro.memory.cell import CellRatios


@dataclass(frozen=True)
class WriteDriver:
    """Bit-line write driver.

    Attributes:
        tech: Technology corner.
        width: Driver NMOS width multiplier (strong, typically >= 4x).
        cell_ratios: Sizing of the cell being written.
        node_capacitance: Cell storage-node capacitance (F).
    """

    tech: Technology
    width: float = 6.0
    cell_ratios: CellRatios = CellRatios()
    node_capacitance: float = 3.2e-15

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.node_capacitance <= 0:
            raise ValueError("node_capacitance must be positive")

    def drive_current(self, vdd: float, series_resistance: float = 0.0) -> float:
        """Effective write current into the cell node.

        The driver discharges the bit line; the cell node follows through
        the access transistor.  The weaker of the two (access transistor
        vs driver-through-R) limits the write.  Series resistance models
        an open defect in the write path; it clips the driver current at
        ``vdd/2 / R`` (the driver must hold the bit line below the trip
        point against the cell pull-up).
        """
        if series_resistance < 0:
            raise ValueError("series_resistance must be non-negative")
        driver = Mosfet("wd", MosType.NMOS, "d", "g", "s", self.width,
                        self.tech)
        access = Mosfet("ax", MosType.NMOS, "d", "g", "s",
                        self.cell_ratios.access, self.tech)
        i_driver = driver.saturation_current(vdd)
        i_access = access.saturation_current(vdd)
        if series_resistance > 0.0:
            i_r = (vdd / 2.0) / series_resistance
            i_driver = min(i_driver, i_r)
        if i_driver <= 0.0 or i_access <= 0.0:
            return 0.0
        return (i_driver * i_access) / (i_driver + i_access)

    def opposing_current(self, vdd: float) -> float:
        """Cell pull-up current opposing the write (PMOS holding the
        node high)."""
        pull_up = Mosfet("pu", MosType.PMOS, "d", "g", "s",
                         self.cell_ratios.pull_up, self.tech)
        # PMOS gate driven to ground: vgs = -vdd.
        return pull_up.saturation_current(-vdd)

    def can_write(self, vdd: float, series_resistance: float = 0.0) -> bool:
        """Write succeeds when the drive overpowers the cell pull-up with
        margin (the classic ratioed-fight criterion)."""
        return (self.drive_current(vdd, series_resistance)
                > 1.1 * self.opposing_current(vdd))

    def write_time(self, vdd: float, series_resistance: float = 0.0) -> float:
        """Time for the cell node to cross the trip point (s)."""
        net = (self.drive_current(vdd, series_resistance)
               - self.opposing_current(vdd))
        if net <= 0.0:
            return math.inf
        return self.node_capacitance * (vdd / 2.0) / net

    def critical_open_resistance(self, vdd: float, period: float,
                                 write_fraction: float = 0.45) -> float:
        """Largest series open resistance at which a write still completes
        within its window at the given period.

        Solved in closed form from the drive-current model; used by the
        behavioural open-defect model for write-path opens.
        """
        budget = write_fraction * period
        lo, hi = 0.0, 1e9
        if not self.can_write(vdd) or self.write_time(vdd) > budget:
            return 0.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            ok = self.can_write(vdd, mid) and self.write_time(vdd, mid) <= budget
            if ok:
                lo = mid
            else:
                hi = mid
        return lo
