"""Bit-line precharge/equalise circuit model.

Before every access both bit lines are precharged to Vdd and equalised.
An incomplete precharge (short window at speed, or a resistive open in
the precharge PMOS) leaves residual differential from the previous
access on the lines -- one of the mechanisms that make some defects
*frequency*-dependent rather than voltage-dependent (paper Section 4.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.devices import Mosfet, MosType
from repro.circuit.technology import Technology


@dataclass(frozen=True)
class Precharge:
    """Bit-line precharge circuit.

    Attributes:
        tech: Technology corner.
        width: Precharge PMOS width multiplier.
        bitline_capacitance: Bit-line capacitance (F).
        precharge_fraction: Fraction of the clock period allotted to
            precharge.
    """

    tech: Technology
    width: float = 4.0
    bitline_capacitance: float = 150e-15
    precharge_fraction: float = 0.4

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.bitline_capacitance <= 0:
            raise ValueError("bitline_capacitance must be positive")
        if not 0 < self.precharge_fraction < 1:
            raise ValueError("precharge_fraction must be in (0, 1)")

    def time_constant(self, vdd: float, series_resistance: float = 0.0) -> float:
        """RC time constant of the precharge pull-up path."""
        pmos = Mosfet("pc", MosType.PMOS, "d", "g", "s", self.width, self.tech)
        r_on = pmos.on_resistance(vdd)
        return (r_on + max(series_resistance, 0.0)) * self.bitline_capacitance

    def residual_differential(self, vdd: float, period: float,
                              initial_differential: float,
                              series_resistance: float = 0.0) -> float:
        """Differential left on the pair after the precharge window.

        Exponential equalisation toward zero differential:
        ``dV_residual = dV_initial * exp(-t_pc / tau)``.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        tau = self.time_constant(vdd, series_resistance)
        if tau <= 0.0:
            return 0.0
        t_pc = self.precharge_fraction * period
        return initial_differential * math.exp(-t_pc / tau)

    def is_complete(self, vdd: float, period: float,
                    series_resistance: float = 0.0,
                    tolerance: float = 0.02) -> bool:
        """Precharge completes when the worst-case previous differential
        (full swing) decays below ``tolerance * vdd``."""
        residual = self.residual_differential(vdd, period, vdd,
                                              series_resistance)
        return residual <= tolerance * vdd
