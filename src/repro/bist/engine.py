"""Programmable memory BIST engine.

"Memory BIST was not implemented at the time of design as this test chip
was only intended for process qualification." (paper, Section 2) -- so
the paper drove every pattern from the ATE.  This module adds the BIST
the test chip lacked: a march-microcoded engine that runs inside the
device model, so the stress-condition methodology can be exercised the
way production SoCs actually deploy it (the controller applies the same
11N patterns; the tester only sweeps voltage/frequency and reads a
go/no-go or a signature).

Two response modes, as in production engines:

* **comparator** -- expected-data compare per read; first-fail address
  and cycle are latched (diagnosis-friendly, more logic);
* **misr** -- all read responses compact into a signature checked
  against the fault-free golden value at the end (cheap, with a
  2^-width aliasing risk).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.bist.misr import Misr
from repro.march.sequencer import DataBackground, MarchSequencer
from repro.march.test import MarchTest
from repro.memory.sram import Sram
from repro.stress import StressCondition


class ResponseMode(Enum):
    """How the engine judges read responses."""

    COMPARATOR = "comparator"
    MISR = "misr"


@dataclass
class BistResult:
    """Outcome of one BIST run.

    Attributes:
        passed: Go/no-go verdict.
        mode: Response mode used.
        cycles: March cycles executed (full run for MISR; first fail
            latches but does not abort, as in real engines).
        signature: Final MISR signature (MISR mode).
        golden: Expected signature (MISR mode).
        first_fail_address / first_fail_cycle: Latched diagnosis data
            (comparator mode; -1 when clean).
        gross_timing_fail: The device missed timing outright at the
            applied condition.
    """

    passed: bool
    mode: ResponseMode
    cycles: int = 0
    signature: int | None = None
    golden: int | None = None
    first_fail_address: int = -1
    first_fail_cycle: int = -1
    gross_timing_fail: bool = False


class BistEngine:
    """March BIST controller bound to one SRAM instance.

    Args:
        sram: The device (carries its own attached faults).
        misr_width: Signature width for MISR mode.
    """

    def __init__(self, sram: Sram, misr_width: int = 16) -> None:
        self.sram = sram
        self.misr = Misr(misr_width)
        self._golden_cache: dict[tuple[str, DataBackground], int] = {}

    # ------------------------------------------------------------------
    def run(self, test: MarchTest, condition: StressCondition,
            mode: ResponseMode = ResponseMode.COMPARATOR,
            background: DataBackground = DataBackground.SOLID) -> BistResult:
        """Execute the march microcode at a stress condition."""
        if not self.sram.meets_timing(condition.vdd, condition.period):
            return BistResult(False, mode, gross_timing_fail=True)
        if mode is ResponseMode.COMPARATOR:
            return self._run_comparator(test, background)
        return self._run_misr(test, background)

    def _run_comparator(self, test: MarchTest,
                        background: DataBackground) -> BistResult:
        sram = self.sram
        sram.power_cycle()
        width = sram.geometry.bits_per_word
        all_ones = (1 << width) - 1
        sequencer = MarchSequencer(sram.geometry.words)
        result = BistResult(True, ResponseMode.COMPARATOR)
        for cop in sequencer.run(test, background):
            result.cycles = cop.cycle + 1
            word = all_ones if cop.value else 0
            if cop.op.is_write:
                sram.write_word(cop.address, word)
                continue
            if sram.read_word(cop.address) != word:
                if result.passed:
                    result.first_fail_address = cop.address
                    result.first_fail_cycle = cop.cycle
                result.passed = False
        return result

    def _run_misr(self, test: MarchTest,
                  background: DataBackground) -> BistResult:
        golden = self._golden_signature(test, background)
        signature = self._collect_signature(test, background,
                                            faulty=True)
        result = BistResult(signature == golden, ResponseMode.MISR,
                            signature=signature, golden=golden)
        result.cycles = test.complexity * self.sram.geometry.words
        return result

    # ------------------------------------------------------------------
    def _golden_signature(self, test: MarchTest,
                          background: DataBackground) -> int:
        key = (test.name + test.notation, background)
        if key not in self._golden_cache:
            self._golden_cache[key] = self._collect_signature(
                test, background, faulty=False)
        return self._golden_cache[key]

    def _collect_signature(self, test: MarchTest,
                           background: DataBackground,
                           faulty: bool) -> int:
        sram = self.sram
        saved_faults = sram.faults
        if not faulty:
            sram.faults = []
        try:
            sram.power_cycle()
            self.misr.reset()
            width = sram.geometry.bits_per_word
            all_ones = (1 << width) - 1
            sequencer = MarchSequencer(sram.geometry.words)
            for cop in sequencer.run(test, background):
                word = all_ones if cop.value else 0
                if cop.op.is_write:
                    sram.write_word(cop.address, word)
                else:
                    self.misr.inject(sram.read_word(cop.address))
            return self.misr.signature
        finally:
            sram.faults = saved_faults
