"""Linear-feedback signature registers for BIST response compaction.

On-chip memory BIST cannot afford a cycle-by-cycle comparator log the
way an ATE can; production engines either compare against expected data
on the fly or compact all read responses into a MISR signature checked
once at the end.  This module supplies both primitives:

* :class:`Lfsr` -- a Fibonacci linear-feedback shift register (also the
  pseudo-random address/data generator of more elaborate BIST schemes);
* :class:`Misr` -- a multiple-input signature register: each clock, the
  response word is XOR-folded into the shifting state.  A single faulty
  read flips the final signature with aliasing probability ~2^-width.

Polynomials are given as integer bit masks including the x^width term's
implied feedback (the constant term must be 1).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Primitive polynomials (maximal-length) for common widths, expressed
#: as feedback tap masks (bit i set = tap on stage i).
PRIMITIVE_TAPS: dict[int, int] = {
    8: 0b10111000,
    16: 0b1101000000001000,
    24: 0b111000010000000000000000,
    32: 0b10000000001000000000000000000011,
}


@dataclass
class Lfsr:
    """Fibonacci LFSR.

    Args:
        width: Register width in bits.
        taps: Feedback tap mask (defaults to a primitive polynomial for
            the width when available).
        seed: Initial state (must be non-zero).
    """

    width: int
    taps: int = 0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.width <= 1:
            raise ValueError("width must exceed 1")
        if self.taps == 0:
            try:
                self.taps = PRIMITIVE_TAPS[self.width]
            except KeyError:
                raise ValueError(
                    f"no default taps for width {self.width}; supply taps"
                ) from None
        mask = (1 << self.width) - 1
        if not 0 < self.seed <= mask:
            raise ValueError("seed must be non-zero and fit the width")
        self.state = self.seed

    def step(self) -> int:
        """Advance one clock; returns the new state."""
        feedback = bin(self.state & self.taps).count("1") & 1
        self.state = ((self.state << 1) | feedback) & ((1 << self.width) - 1)
        if self.state == 0:
            self.state = self.seed
        return self.state

    def reset(self) -> None:
        self.state = self.seed


@dataclass
class Misr:
    """Multiple-input signature register.

    Args:
        width: Register width; response words wider than this are folded
            by XOR before injection.
        taps: Feedback tap mask (defaults like :class:`Lfsr`).
    """

    width: int
    taps: int = 0

    def __post_init__(self) -> None:
        if self.width <= 1:
            raise ValueError("width must exceed 1")
        if self.taps == 0:
            try:
                self.taps = PRIMITIVE_TAPS[self.width]
            except KeyError:
                raise ValueError(
                    f"no default taps for width {self.width}; supply taps"
                ) from None
        self.state = 0

    def reset(self) -> None:
        self.state = 0

    def inject(self, word: int) -> None:
        """Clock the register with a response word."""
        mask = (1 << self.width) - 1
        folded = 0
        while word:
            folded ^= word & mask
            word >>= self.width
        feedback = bin(self.state & self.taps).count("1") & 1
        self.state = (((self.state << 1) | feedback) ^ folded) & mask

    @property
    def signature(self) -> int:
        return self.state

    def aliasing_probability(self) -> float:
        """Asymptotic probability that a faulty stream produces the
        golden signature: 2^-width."""
        return 2.0 ** (-self.width)
