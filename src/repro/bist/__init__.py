"""Memory BIST: the on-chip test engine the paper's test chip lacked.

March-microcoded controller with comparator and MISR response modes,
plus the LFSR/MISR signature primitives.  Runs against the same SRAM
model and stress conditions as the virtual ATE, so the stress-condition
methodology can be exercised the way production SoCs deploy it.
"""

from repro.bist.engine import BistEngine, BistResult, ResponseMode
from repro.bist.misr import PRIMITIVE_TAPS, Lfsr, Misr

__all__ = [
    "BistEngine",
    "BistResult",
    "Lfsr",
    "Misr",
    "PRIMITIVE_TAPS",
    "ResponseMode",
]
