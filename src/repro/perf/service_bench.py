"""Estimator-service benchmark: latency, throughput, cache behaviour.

Produces the ``BENCH_service.json`` artefact documented in
``docs/service.md``.  The benchmark starts a real
:func:`repro.service.app.serve` listener on an ephemeral loopback port
and drives it over one keep-alive HTTP connection -- the measured
latencies include request parsing, dispatch, rendering and the socket
round-trip, exactly what a client of ``repro serve`` sees.

Three measurements:

* **cold** -- every unique request body once, against an empty cache:
  all responses must be ``X-Cache: miss`` (the estimator is actually
  computing); p50/p99 latency and queries/sec of the uncached path;
* **warm** -- the same bodies repeated: every response must be
  ``X-Cache: hit`` (``warm_hit_rate`` pinned to exactly 1.0 by the
  validator -- one miss means the content-addressed key leaked
  something non-deterministic into the request identity);
* **identity** -- each unique response body compared byte-for-byte
  against the document an in-process
  :class:`~repro.core.estimator.FaultCoverageEstimator` produces for
  the same queries (``byte_identical``): the service is a transport,
  never a reinterpretation.

The validator (:func:`validate_service_bench`) enforces the floors:
warm queries/sec at least :data:`MIN_WARM_QPS`, ``warm_hit_rate``
exactly 1.0 and ``byte_identical`` true.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass
from typing import Any

from repro.core.database import default_database_path
from repro.memory.geometry import MemoryGeometry
from repro.runner.atomic import canonical_json
from repro.service.app import EstimatorService, serve
from repro.service.schema import batch_response_document, report_document
from repro.service.state import DatabaseSnapshot, ServiceState

#: Schema tag of the emitted BENCH_service.json document.
SERVICE_BENCH_SCHEMA = "repro.bench-service/1"

#: Warm-path throughput floor (requests/sec over one serial keep-alive
#: connection).  A warm request is parse + cache lookup + socket
#: round-trip; measured rates are in the thousands, so 200/sec only
#: trips if caching stops working or the hot path grows real compute.
MIN_WARM_QPS = 200.0


@dataclass(frozen=True)
class ServiceBenchConfig:
    """Shape of the estimator-service benchmark.

    Attributes:
        unique_requests: Distinct request bodies (distinct geometries),
            i.e. the cold-pass request count and the cache population.
        warm_repeats: How many times the warm pass replays each body.
        queries_per_request: Batch width of every request body.
        cache_size: Service response-cache capacity; must hold every
            unique body or the warm pass cannot be all-hits.
    """

    unique_requests: int = 96
    warm_repeats: int = 5
    queries_per_request: int = 2
    cache_size: int = 1024

    @classmethod
    def quick(cls) -> "ServiceBenchConfig":
        """A sub-second configuration for CI smoke runs.

        Fewer bodies and repeats, same structure: the hit-rate and
        byte-identity checks are exact regardless of scale, and the
        warm-throughput floor is structural (cache lookup vs estimator
        compute), not sample-count-dependent.
        """
        return cls(unique_requests=16, warm_repeats=3)

    def __post_init__(self) -> None:
        if self.unique_requests < 1 or self.warm_repeats < 1:
            raise ValueError(
                "unique_requests and warm_repeats must be >= 1, got "
                f"{self.unique_requests} and {self.warm_repeats}")
        if self.cache_size < self.unique_requests:
            raise ValueError(
                f"cache_size {self.cache_size} cannot hold "
                f"{self.unique_requests} unique requests -- the warm "
                "pass would evict its own entries")


def _request_bodies(config: ServiceBenchConfig,
                    kinds: list[str]) -> list[bytes]:
    """The unique request bodies: distinct geometries, cycled kinds."""
    bodies = []
    for i in range(config.unique_requests):
        queries = []
        for j in range(config.queries_per_request):
            k = i * config.queries_per_request + j
            queries.append({
                "geometry": {"rows": 128 * (k % 64 + 1),
                             "columns": 4 + 4 * (k // 64 % 4),
                             "bits_per_word": 8},
                "kind": kinds[k % len(kinds)],
            })
        bodies.append(json.dumps({"queries": queries}).encode("utf-8"))
    return bodies


def _percentile_ms(latencies: list[float], q: float) -> float:
    """Nearest-rank percentile of a latency sample, in milliseconds."""
    ranked = sorted(latencies)
    index = min(len(ranked) - 1, max(0, round(q * len(ranked)) - 1))
    return round(ranked[index] * 1000.0, 3)


async def _roundtrip(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter,
                     body: bytes) -> tuple[float, dict[str, str], bytes]:
    """One timed POST /v1/estimate over an open keep-alive connection."""
    request = (f"POST /v1/estimate HTTP/1.1\r\nHost: bench\r\n"
               f"Content-Length: {len(body)}\r\n\r\n"
               ).encode("latin-1") + body
    started = time.perf_counter()
    writer.write(request)
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    headers: dict[str, str] = {}
    for line in head.decode("latin-1").split("\r\n")[1:]:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    payload = await reader.readexactly(int(headers["content-length"]))
    return time.perf_counter() - started, headers, payload


def _pass_stats(latencies: list[float], hits: int) -> dict[str, Any]:
    """Fold one pass's samples into its report row."""
    seconds = sum(latencies)
    return {
        "requests": len(latencies),
        "cache_hits": hits,
        "hit_rate": round(hits / len(latencies), 6),
        "seconds": round(seconds, 6),
        "qps": round(len(latencies) / seconds, 1) if seconds else None,
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
    }


def _expected_body(snapshot: DatabaseSnapshot, body: bytes) -> bytes:
    """What an in-process estimator renders for one request body."""
    results = []
    for query in json.loads(body)["queries"]:
        geometry = MemoryGeometry(**query["geometry"])
        report = snapshot.estimator.estimate(geometry, query["kind"])
        results.append(report_document(report))
    doc = batch_response_document(snapshot.etag, results)
    return canonical_json(doc).encode("utf-8") + b"\n"


async def _drive(service: EstimatorService,
                 config: ServiceBenchConfig,
                 bodies: list[bytes]) -> dict[str, Any]:
    """Run the cold and warm passes against a live listener."""
    server = await serve(service)
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        cold_latencies: list[float] = []
        cold_hits = 0
        responses: list[bytes] = []
        for body in bodies:
            elapsed, headers, payload = await _roundtrip(
                reader, writer, body)
            cold_latencies.append(elapsed)
            cold_hits += headers.get("x-cache") == "hit"
            responses.append(payload)
        warm_latencies: list[float] = []
        warm_hits = 0
        for _ in range(config.warm_repeats):
            for body in bodies:
                elapsed, headers, payload = await _roundtrip(
                    reader, writer, body)
                warm_latencies.append(elapsed)
                warm_hits += headers.get("x-cache") == "hit"
        return {
            "cold": _pass_stats(cold_latencies, cold_hits),
            "warm": _pass_stats(warm_latencies, warm_hits),
            "responses": responses,
        }
    finally:
        writer.close()
        server.close()
        await server.wait_closed()


def run_service_benchmark(config: ServiceBenchConfig | None = None,
                          ) -> dict[str, Any]:
    """Run the service benchmark and assemble the document.

    Args:
        config: Benchmark shape (defaults to
            :class:`ServiceBenchConfig`).

    Returns:
        The ``BENCH_service.json`` document (see
        :func:`validate_service_bench` for the schema).

    Raises:
        RuntimeError: a cold response was served from cache, a warm
            response missed, or a response body diverged from the
            in-process estimator -- contract bugs that must fail
            loudly, never be recorded as a benchmark row.
    """
    config = config if config is not None else ServiceBenchConfig()
    snapshot = DatabaseSnapshot.load(default_database_path())
    service = EstimatorService(ServiceState(snapshot),
                               cache_size=config.cache_size)
    bodies = _request_bodies(config, snapshot.database.kinds())
    measured = asyncio.run(_drive(service, config, bodies))
    cold, warm = measured["cold"], measured["warm"]
    if cold["cache_hits"]:
        raise RuntimeError(
            f"{cold['cache_hits']} cold response(s) came from the "
            "cache -- the unique request bodies collided")
    if warm["hit_rate"] != 1.0:
        raise RuntimeError(
            f"warm hit rate {warm['hit_rate']} != 1.0 -- the "
            "content-addressed cache key is unstable across identical "
            "requests")
    mismatches = sum(
        served != _expected_body(snapshot, body)
        for body, served in zip(bodies, measured["responses"]))
    if mismatches:
        raise RuntimeError(
            f"{mismatches} response body(ies) diverged from the "
            "in-process estimator -- the byte-identity contract is "
            "broken")
    return {
        "schema": SERVICE_BENCH_SCHEMA,
        "config": asdict(config),
        "cold": cold,
        "warm": warm,
        "identity": {"checked_requests": len(bodies),
                     "byte_identical": True},
        # Headline figures: warm-path latency/throughput plus the two
        # contract flags the validator pins.
        "qps": warm["qps"],
        "p50_ms": warm["p50_ms"],
        "p99_ms": warm["p99_ms"],
        "warm_hit_rate": warm["hit_rate"],
        "byte_identical": True,
    }


def validate_service_bench(doc: Any) -> list[str]:
    """Validate a BENCH_service.json document's schema and floors.

    Beyond shape, enforces the acceptance floors: warm throughput at
    least :data:`MIN_WARM_QPS` requests/sec, ``warm_hit_rate`` exactly
    1.0 and ``byte_identical`` true.

    Args:
        doc: Parsed JSON document.

    Returns:
        Human-readable problems; empty when the document is valid.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SERVICE_BENCH_SCHEMA:
        problems.append(f"schema != {SERVICE_BENCH_SCHEMA!r}")
    if not isinstance(doc.get("config"), dict):
        problems.append("missing or non-object 'config'")
    for section in ("cold", "warm"):
        inner = doc.get(section)
        if not isinstance(inner, dict):
            problems.append(f"missing or non-object {section!r}")
            continue
        for field in ("requests", "seconds", "qps", "p50_ms", "p99_ms"):
            if not isinstance(inner.get(field), (int, float)):
                problems.append(
                    f"{section}: missing or non-numeric {field!r}")
    for field in ("qps", "p50_ms", "p99_ms"):
        if not isinstance(doc.get(field), (int, float)):
            problems.append(f"missing or non-numeric {field!r}")
    qps = doc.get("qps")
    if isinstance(qps, (int, float)) and qps < MIN_WARM_QPS:
        problems.append(
            f"qps = {qps} is below the {MIN_WARM_QPS} warm floor")
    if doc.get("warm_hit_rate") != 1.0:
        problems.append("warm_hit_rate is not exactly 1.0")
    if doc.get("byte_identical") is not True:
        problems.append("byte_identical is not true")
    return problems
