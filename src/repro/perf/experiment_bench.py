"""Streaming-experiment benchmark: throughput, memory, invariance.

Produces the ``BENCH_experiment.json`` artefact documented in
``docs/performance.md``.  Five measurements, every equivalence checked
byte-identical (canonical JSON of the shard-payload form) before any
number is reported:

* **streaming** -- a full :class:`~repro.experiment.StreamingExperiment`
  run at the configured device count (10^6 by default), timed serially:
  the headline ``devices_per_sec`` figure;
* **memory** -- ``tracemalloc`` peaks of two streaming runs that differ
  only in device count: the O(classes) reduce means the peak must be a
  function of the shard/block shape, not of N (``memory_independent``);
* **legacy** -- the original materialise-the-whole-lot path
  (:meth:`PopulationGenerator.generate` +
  :meth:`StressClassifier.classify`) timed at an equal, smaller N
  against the streaming path: ``speedup`` (floor: 5x);
* **legacy_identical** -- ``scheme="legacy"`` streaming folds the exact
  single-stream draw order, so its accumulator payload must equal
  :meth:`ExperimentAccumulator.from_experiment` of the legacy result;
* **shard_invariant** / **worker_invariant** -- the same population
  reduced under a different shard layout and under a 2-process pool
  must produce byte-identical payloads (the block-substream contract).

The validator (:func:`validate_experiment_bench`) enforces the floors:
``devices_per_sec`` at least :data:`MIN_DEVICES_PER_SEC`, ``speedup``
at least :data:`MIN_LEGACY_SPEEDUP`, and all four flags true -- so a
regression that breaks the determinism contract or erodes the streaming
win fails the artefact's schema check, not just a benchmark eyeball.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import asdict, dataclass
from typing import Any

from repro.experiment.streaming.accumulator import ExperimentAccumulator
from repro.experiment.streaming.engine import StreamingExperiment
from repro.experiment.streaming.runner import StreamingRunner
from repro.runner.atomic import canonical_json

#: Schema tag of the emitted BENCH_experiment.json document.
EXPERIMENT_BENCH_SCHEMA = "repro.bench-experiment/1"

#: Acceptance floors enforced by the validator.  The throughput floor
#: is deliberately far below the measured ~380k devices/sec so that a
#: loaded CI host does not flake it, while still catching an
#: accidental return to the ~26k devices/sec materialise-everything
#: path.
MIN_DEVICES_PER_SEC = 50_000.0
MIN_LEGACY_SPEEDUP = 5.0

#: Peak-memory ratio between the large and small streaming runs above
#: which the O(classes) claim is considered broken.  The two runs share
#: shard/block shape, so their per-shard working sets are identical and
#: only the accumulator (bounded by the class lattice) differs.
MAX_MEMORY_RATIO = 1.25


@dataclass(frozen=True)
class ExperimentBenchConfig:
    """Shape of the streaming-experiment benchmark.

    Attributes:
        devices: Population of the headline streaming run.
        seed: Root RNG seed (every half shares it).
        shard_devices: Shard size of the timed runs.
        alt_shard_devices: Second shard size for the invariance check.
        memory_devices: Device counts of the two tracemalloc probes.
        legacy_devices: Equal-N size of the legacy-vs-streaming timing
            (the legacy path materialises the whole lot, so this stays
            small enough to keep the benchmark seconds-scale).
        invariance_devices: Size of the shard/worker invariance runs.
        workers: Pool width of the worker-invariance run.
    """

    devices: int = 1_000_000
    seed: int = 1105
    shard_devices: int = 65_536
    alt_shard_devices: int = 16_384
    memory_devices: tuple[int, int] = (262_144, 1_048_576)
    legacy_devices: int = 40_960
    invariance_devices: int = 131_072
    workers: int = 2

    @classmethod
    def quick(cls) -> "ExperimentBenchConfig":
        """A seconds-scale configuration for CI smoke runs.

        Every half shrinks but keeps the same structure: the
        invariance and identity checks are exact regardless of N, and
        the throughput/speedup floors are structural (vectorised block
        generation vs per-chip Python), not population-dependent.
        """
        return cls(devices=65_536,
                   shard_devices=16_384,
                   alt_shard_devices=8_192,
                   memory_devices=(32_768, 131_072),
                   legacy_devices=8_192,
                   invariance_devices=32_768)

    def __post_init__(self) -> None:
        small, large = self.memory_devices
        if small >= large:
            raise ValueError(
                "memory_devices must be (small, large) with small < "
                f"large, got {self.memory_devices}")


def _engine(config: ExperimentBenchConfig, n_devices: int,
            shard_devices: int | None = None,
            scheme: str = "spawn") -> StreamingExperiment:
    """A fresh engine sharing the benchmark's seed and shard shape."""
    return StreamingExperiment(
        n_devices=n_devices,
        seed=config.seed,
        shard_devices=(shard_devices if shard_devices is not None
                       else config.shard_devices),
        scheme=scheme)


def _payload(config: ExperimentBenchConfig, n_devices: int,
             shard_devices: int | None = None, workers: int = 1,
             scheme: str = "spawn") -> dict[str, Any]:
    """Run a streaming experiment and return its canonical payload."""
    runner = StreamingRunner(
        _engine(config, n_devices, shard_devices, scheme),
        workers=workers)
    return runner.run().accumulator.as_payload()


def _warm(engine: StreamingExperiment) -> None:
    """Build an engine's one-off setup outside any benchmark clock.

    Classifier/tester construction and the extractor's critical-area
    extraction are identical fixed costs on the legacy and streaming
    sides; at small equal-N they would dominate both timings and
    flatten the per-device difference the speedup figure measures.
    """
    engine.classifier
    engine.extractor.bridge_site_classes()
    engine.extractor.open_site_classes()


def _bench_streaming(config: ExperimentBenchConfig) -> dict[str, Any]:
    """Time the headline serial streaming run: devices/sec."""
    runner = StreamingRunner(_engine(config, config.devices))
    started = time.perf_counter()
    result = runner.run()
    seconds = time.perf_counter() - started
    acc = result.accumulator
    return {
        "devices": acc.devices,
        "defective": acc.defective,
        "interesting": acc.interesting,
        "shards": result.executed_shards,
        "seconds": round(seconds, 6),
        "devices_per_sec": round(acc.devices / seconds, 1),
    }


def _peak_bytes(config: ExperimentBenchConfig, n_devices: int) -> int:
    """tracemalloc peak of one streaming run (numpy blocks included)."""
    tracemalloc.start()
    try:
        StreamingRunner(_engine(config, n_devices)).run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _bench_memory(config: ExperimentBenchConfig) -> dict[str, Any]:
    """Peak-RSS probe: same shard shape, two device counts.

    Both runs stream the same 65k-device shards, so the per-shard
    working set (one block's count matrix + defect batches + the
    defective chips of that block) is identical; only the O(classes)
    accumulator and the O(n_shards) plan differ.  A peak that grows
    with N means something is materialising the lot.
    """
    small_n, large_n = config.memory_devices
    small_peak = _peak_bytes(config, small_n)
    large_peak = _peak_bytes(config, large_n)
    ratio = round(large_peak / max(1, small_peak), 3)
    return {
        "small_devices": small_n,
        "large_devices": large_n,
        "small_peak_bytes": small_peak,
        "large_peak_bytes": large_peak,
        "peak_ratio": ratio,
        "memory_independent": ratio <= MAX_MEMORY_RATIO,
    }


def _bench_legacy(config: ExperimentBenchConfig) -> dict[str, Any]:
    """Equal-N legacy vs streaming timing plus the identity check.

    The legacy half is the pre-streaming pipeline exactly as `repro
    venn` runs it: materialise every chip, then classify the list.  The
    identity half re-folds the same single-stream draw order through
    ``scheme="legacy"`` streaming and compares canonical payloads.

    Both engines are warmed (classifier, tester, critical-area
    extraction) before their clocks start: those are shared one-off
    setup costs, identical on both sides, and at the small equal-N
    this comparison runs at they would otherwise swamp the per-device
    evaluation costs the speedup figure exists to measure.
    """
    n = config.legacy_devices
    legacy_engine = _engine(config, n, scheme="legacy")
    generator = legacy_engine.generator
    classifier = legacy_engine.classifier
    _warm(legacy_engine)
    started = time.perf_counter()
    chips = generator.generate()
    legacy_result = classifier.classify(chips)
    legacy_seconds = time.perf_counter() - started
    legacy_payload = ExperimentAccumulator.from_experiment(
        legacy_result).as_payload()

    streaming_engine = _engine(config, n)
    _warm(streaming_engine)
    runner = StreamingRunner(streaming_engine)
    started = time.perf_counter()
    runner.run()
    streaming_seconds = time.perf_counter() - started

    identity_payload = _payload(config, n, scheme="legacy")
    legacy_identical = (canonical_json(identity_payload)
                        == canonical_json(legacy_payload))
    if not legacy_identical:
        raise RuntimeError(
            "scheme='legacy' streaming diverged from the materialised "
            "legacy pipeline -- the equivalence oracle is broken")
    return {
        "devices": n,
        "legacy_seconds": round(legacy_seconds, 6),
        "streaming_seconds": round(streaming_seconds, 6),
        "speedup": (round(legacy_seconds / streaming_seconds, 2)
                    if streaming_seconds else None),
        "legacy_identical": legacy_identical,
    }


def _bench_invariance(config: ExperimentBenchConfig) -> dict[str, Any]:
    """Shard-layout and worker-count invariance at a shared N."""
    n = config.invariance_devices
    base = _payload(config, n)
    resharded = _payload(config, n,
                         shard_devices=config.alt_shard_devices)
    pooled = _payload(config, n, workers=config.workers)
    shard_invariant = canonical_json(base) == canonical_json(resharded)
    worker_invariant = canonical_json(base) == canonical_json(pooled)
    if not (shard_invariant and worker_invariant):
        raise RuntimeError(
            "streaming results changed with the shard layout or worker "
            "count -- the block-substream contract is broken")
    return {
        "devices": n,
        "shard_devices": [config.shard_devices,
                          config.alt_shard_devices],
        "workers": [1, config.workers],
        "shard_invariant": shard_invariant,
        "worker_invariant": worker_invariant,
    }


def run_experiment_benchmark(config: ExperimentBenchConfig | None = None,
                             ) -> dict[str, Any]:
    """Run all streaming-experiment benchmarks and assemble the doc.

    Args:
        config: Benchmark shape (defaults to
            :class:`ExperimentBenchConfig`: 10^6 devices).

    Returns:
        The ``BENCH_experiment.json`` document (see
        :func:`validate_experiment_bench` for the schema).

    Raises:
        RuntimeError: an invariance or identity check failed -- a
            determinism bug that must fail loudly, never be recorded
            as a benchmark row.
    """
    config = config if config is not None else ExperimentBenchConfig()
    streaming = _bench_streaming(config)
    memory = _bench_memory(config)
    legacy = _bench_legacy(config)
    invariance = _bench_invariance(config)
    return {
        "schema": EXPERIMENT_BENCH_SCHEMA,
        "config": asdict(config),
        "streaming": streaming,
        "memory": memory,
        "legacy": legacy,
        "invariance": invariance,
        # Headline figures: throughput of the big run, the equal-N win
        # over the materialise-everything path, and the four
        # determinism/memory flags the validator pins to true.
        "devices_per_sec": streaming["devices_per_sec"],
        "speedup_vs_legacy": legacy["speedup"],
        "memory_independent": memory["memory_independent"],
        "legacy_identical": legacy["legacy_identical"],
        "shard_invariant": invariance["shard_invariant"],
        "worker_invariant": invariance["worker_invariant"],
    }


def validate_experiment_bench(doc: Any) -> list[str]:
    """Validate a BENCH_experiment.json document's schema and floors.

    Beyond shape, enforces the acceptance floors: at least
    :data:`MIN_DEVICES_PER_SEC` devices/sec on the streaming run, at
    least a :data:`MIN_LEGACY_SPEEDUP` x equal-N speedup over the
    legacy pipeline, and the ``memory_independent``,
    ``legacy_identical``, ``shard_invariant`` and ``worker_invariant``
    flags all true.

    Args:
        doc: Parsed JSON document.

    Returns:
        Human-readable problems; empty when the document is valid.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != EXPERIMENT_BENCH_SCHEMA:
        problems.append(f"schema != {EXPERIMENT_BENCH_SCHEMA!r}")
    if not isinstance(doc.get("config"), dict):
        problems.append("missing or non-object 'config'")
    for section, fields in (
            ("streaming", ("devices", "shards", "devices_per_sec")),
            ("memory", ("small_peak_bytes", "large_peak_bytes",
                        "peak_ratio")),
            ("legacy", ("devices", "speedup")),
            ("invariance", ("devices",))):
        inner = doc.get(section)
        if not isinstance(inner, dict):
            problems.append(f"missing or non-object {section!r}")
            continue
        for field in fields:
            if not isinstance(inner.get(field), (int, float)):
                problems.append(
                    f"{section}: missing or non-numeric {field!r}")
    for field, floor in (("devices_per_sec", MIN_DEVICES_PER_SEC),
                         ("speedup_vs_legacy", MIN_LEGACY_SPEEDUP)):
        value = doc.get(field)
        if not isinstance(value, (int, float)):
            problems.append(f"missing or non-numeric {field!r}")
        elif value < floor:
            problems.append(
                f"{field} = {value} is below the {floor} floor")
    for flag in ("memory_independent", "legacy_identical",
                 "shard_invariant", "worker_invariant"):
        if doc.get(flag) is not True:
            problems.append(f"{flag} is not true")
    return problems
