"""Campaign-execution benchmark: serial vs parallel vs cached.

Produces the ``BENCH_campaign.json`` artefact documented in
``docs/performance.md``.  The harness times the same sweep four ways
-- serial, across a bare worker pool, across the *supervised* pool
(:mod:`repro.perf.supervisor`; prices the crash-tolerance layer's
clean-path overhead), and against a warm evaluation cache -- and
verifies on the way that all of them produce byte-identical records
(the :mod:`repro.perf` determinism contract is *measured*, not assumed).

Two workloads are timed, because they answer different questions:

* ``cpu`` -- the stock in-memory behaviour model.  Speedup here is
  bounded by physical cores, so the harness clamps this workload's
  worker count to ``min(requested, os.cpu_count())`` (with a logged
  warning, and ``workers_clamped`` recorded in the artefact):
  oversubscribing a CPU-bound pool cannot help and used to make the
  committed artefact report a meaningless 0.18x "speedup" on a
  single-CPU container.
* ``sim`` -- the same campaign behind
  :class:`SiteLatencyBehaviorModel`, which adds a small per-site sleep
  modelling the paper's actual workload: each site evaluation is a call
  into an external analogue simulator and is latency-, not CPU-, bound
  (the very reason the paper pre-computes its simulation database).
  Workers overlap that latency, so the speedup approaches the worker
  count even on one core.

The cache rows use the ``cpu`` workload: a warm cache answers every
point without evaluating, so its hit rate -- not raw time -- is the
headline figure.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass
from typing import Any

from repro.circuit.technology import CMOS018
from repro.defects.models import DefectKind
from repro.ifa.flow import IfaCampaign
from repro.memory.geometry import MemoryGeometry
from repro.perf.cache import EvaluationCache
from repro.runner.campaign import CampaignResult, CampaignRunner, SweepSpec
from repro.stress import production_conditions

#: Schema tag of the emitted BENCH_campaign.json document.
BENCH_SCHEMA = "repro.bench-campaign/1"


@dataclass(frozen=True)
class BenchConfig:
    """Shape of the benchmark sweep.

    Attributes:
        rows, columns, bits: Memory geometry of the benchmark campaign.
        sites: Site-population size per sweep.
        resistances: Number of sweep resistances (log-spaced decades).
        conditions: Number of stress conditions used.
        workers: Requested worker-process count for the parallel rows.
            The cpu-bound workload is clamped to
            ``min(workers, os.cpu_count())`` at run time (recorded in
            the artefact as ``workers`` vs ``workers_requested`` plus
            the ``workers_clamped`` flag); the latency-bound ``sim``
            workload keeps the requested count, since oversubscription
            is how it overlaps external latency.
        sim_latency: Per-site simulated-simulator latency (seconds) of
            the ``sim`` workload.
        seed: Campaign seed.
    """

    rows: int = 32
    columns: int = 4
    bits: int = 8
    sites: int = 120
    resistances: int = 4
    conditions: int = 4
    workers: int = 4
    sim_latency: float = 0.004
    seed: int = 11

    @classmethod
    def quick(cls) -> "BenchConfig":
        """A seconds-scale configuration for CI smoke runs."""
        return cls(rows=16, columns=2, bits=4, sites=24, resistances=3,
                   conditions=3, sim_latency=0.001)


class SiteLatencyBehaviorModel:
    """A behaviour model with per-site latency: the paper's real workload.

    In the source flow every site evaluation is a call into an external
    analogue simulator; the in-memory model used by this reproduction
    answers in microseconds instead.  Wrapping it with a fixed per-call
    sleep restores the original latency-bound execution profile so the
    executor benchmark measures the regime the process pool exists for.

    Picklable (ships to worker processes) and fingerprintable (the
    cache key covers both the inner model and the latency).

    Args:
        inner: The real behaviour model to delegate to.
        latency: Seconds slept before every site evaluation.
    """

    def __init__(self, inner: Any, latency: float) -> None:
        self.inner = inner
        self.latency = float(latency)

    def fails_condition(self, defect: Any, condition: Any) -> bool:
        """Delegate to the inner model after the simulated round-trip."""
        time.sleep(self.latency)
        return self.inner.fails_condition(defect, condition)


def _records_blob(result: CampaignResult) -> str:
    """Canonical byte-comparison form of a result's records."""
    return json.dumps([asdict(r) for r in result.records], sort_keys=True)


def _bench_specs(config: BenchConfig) -> list[SweepSpec]:
    """The benchmark sweep plan derived from the config."""
    conds = tuple(production_conditions(CMOS018).values())
    conds = conds[:config.conditions]
    resistances = [10.0 ** (2 + i) for i in range(config.resistances)]
    return [SweepSpec.of(DefectKind.BRIDGE, resistances, conds)]


def _make_campaign(config: BenchConfig,
                   sim: bool = False) -> IfaCampaign:
    """A fresh benchmark campaign (optionally latency-wrapped)."""
    geometry = MemoryGeometry(config.rows, config.columns, config.bits)
    campaign = IfaCampaign(geometry, CMOS018, n_sites=config.sites,
                           seed=config.seed)
    if sim:
        campaign.behavior = SiteLatencyBehaviorModel(
            campaign.behavior, config.sim_latency)
    return campaign


def _timed_run(runner: CampaignRunner,
               specs: list[SweepSpec]) -> tuple[CampaignResult, float]:
    """Run a campaign and return (result, wall seconds)."""
    started = time.perf_counter()
    result = runner.run(specs)
    return result, time.perf_counter() - started


def _workload_row(units: int, seconds: float) -> dict[str, Any]:
    """One timing row of the benchmark document."""
    return {
        "seconds": round(seconds, 6),
        "units": units,
        "units_per_sec": round(units / seconds, 3) if seconds else None,
    }


def run_benchmark(config: BenchConfig | None = None) -> dict[str, Any]:
    """Time the benchmark sweep serial / parallel / cached.

    Args:
        config: Benchmark shape (defaults to :class:`BenchConfig`).

    Returns:
        The ``BENCH_campaign.json`` document (see :func:`validate_bench`
        for the schema).

    Raises:
        RuntimeError: the parallel or cached records diverged from the
            serial ones -- a determinism bug that must fail loudly.
    """
    config = config if config is not None else BenchConfig()
    specs = _bench_specs(config)
    workloads: dict[str, Any] = {}

    # The cpu-bound workload cannot gain from more workers than cores,
    # so its worker count is clamped to min(requested, os.cpu_count()).
    # The sim workload keeps the requested count on purpose: it is
    # latency-bound, and oversubscription is exactly how a pool
    # overlaps external-simulator latency on few cores.
    cpu_workers = min(config.workers, _cpu_count())
    if cpu_workers < config.workers:
        print(f"bench: clamping the cpu-bound workload to {cpu_workers} "
              f"worker(s) ({config.workers} requested, "
              f"{_cpu_count()} CPU(s) visible)", file=sys.stderr)

    for name, sim in (("cpu", False), ("sim", True)):
        workers = cpu_workers if name == "cpu" else config.workers
        serial, t_serial = _timed_run(
            CampaignRunner(_make_campaign(config, sim)), specs)
        # The "parallel" row times the bare (unsupervised) executor so
        # the "supervised" row below can price the supervision layer
        # against it.
        parallel, t_parallel = _timed_run(
            CampaignRunner(_make_campaign(config, sim),
                           workers=workers, supervise=False), specs)
        if _records_blob(serial) != _records_blob(parallel):
            raise RuntimeError(
                f"{name}: parallel records diverged from serial")
        units = len(serial.records)
        workloads[name] = {
            "serial": _workload_row(units, t_serial),
            "parallel": {**_workload_row(units, t_parallel),
                         "workers": workers,
                         "workers_requested": config.workers},
            "speedup": round(t_serial / t_parallel, 3),
            "parallel_matches_serial": True,
        }
        if name == "sim":
            # Supervised clean path on the latency-bound workload (the
            # regime long campaigns run in): the acceptance bar is
            # staying within a few percent of the bare executor.
            supervised, t_supervised = _timed_run(
                CampaignRunner(_make_campaign(config, sim),
                               workers=workers), specs)
            if _records_blob(serial) != _records_blob(supervised):
                raise RuntimeError(
                    f"{name}: supervised records diverged from serial")
            workloads[name]["supervised"] = {
                **_workload_row(units, t_supervised),
                "workers": workers,
                "overhead_vs_parallel": round(
                    t_supervised / t_parallel - 1.0, 4),
                "supervised_matches_serial": True,
            }
    workloads["cpu"]["workers_clamped"] = cpu_workers < config.workers

    # Cache rows: cold run populates, warm run answers from the cache.
    cache = EvaluationCache()
    cold, t_cold = _timed_run(
        CampaignRunner(_make_campaign(config), cache=cache), specs)
    warm_cache = EvaluationCache()
    warm_cache.entries = dict(cache.entries)
    warm, t_warm = _timed_run(
        CampaignRunner(_make_campaign(config), cache=warm_cache), specs)
    if _records_blob(cold) != _records_blob(warm):
        raise RuntimeError("cached records diverged from evaluated ones")
    units = len(cold.records)
    workloads["cache"] = {
        "cold": {**_workload_row(units, t_cold),
                 **{"hit_rate": cold.cache_stats["hit_rate"]}},
        "warm": {**_workload_row(units, t_warm),
                 **{"hit_rate": warm.cache_stats["hit_rate"],
                    "cached_units": warm.cached_units}},
        "speedup": round(t_cold / t_warm, 3) if t_warm else None,
        "cached_matches_evaluated": True,
    }

    return {
        "schema": BENCH_SCHEMA,
        "config": asdict(config),
        "cpu_count": _cpu_count(),
        "workloads": workloads,
        # Headline figures: the latency-bound workload is the regime
        # the executor targets (see module docstring) and the warm
        # cache hit rate is the cache's contract.
        "speedup_parallel": workloads["sim"]["speedup"],
        "speedup_parallel_cpu_bound": workloads["cpu"]["speedup"],
        "cache_hit_rate": workloads["cache"]["warm"]["hit_rate"],
        "supervision_overhead": workloads["sim"]["supervised"][
            "overhead_vs_parallel"],
    }


def _cpu_count() -> int:
    """Visible CPU count (recorded so readers can judge the cpu rows)."""
    import os

    return os.cpu_count() or 1


def validate_bench(doc: Any) -> list[str]:
    """Validate a BENCH_campaign.json document's schema.

    Used by the test suite and the ``scripts/check.sh`` smoke step.

    Args:
        doc: Parsed JSON document.

    Returns:
        Human-readable problems; empty when the document is valid.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema != {BENCH_SCHEMA!r}")
    for field in ("config", "workloads"):
        if not isinstance(doc.get(field), dict):
            problems.append(f"missing or non-object {field!r}")
    for field in ("speedup_parallel", "speedup_parallel_cpu_bound",
                  "cache_hit_rate", "supervision_overhead"):
        if not isinstance(doc.get(field), (int, float)):
            problems.append(f"missing or non-numeric {field!r}")
    workloads = doc.get("workloads")
    if isinstance(workloads, dict):
        for name in ("cpu", "sim"):
            wl = workloads.get(name)
            if not isinstance(wl, dict):
                problems.append(f"missing workload {name!r}")
                continue
            for row in ("serial", "parallel"):
                if not isinstance(wl.get(row), dict):
                    problems.append(f"workload {name!r}: missing {row!r}")
            if wl.get("parallel_matches_serial") is not True:
                problems.append(
                    f"workload {name!r}: parallel_matches_serial is not "
                    "true")
            if name == "sim":
                supervised = wl.get("supervised")
                if not isinstance(supervised, dict):
                    problems.append(
                        "workload 'sim': missing 'supervised' row "
                        "(the clean-path supervision-overhead "
                        "measurement)")
                elif supervised.get(
                        "supervised_matches_serial") is not True:
                    problems.append(
                        "workload 'sim': supervised_matches_serial is "
                        "not true")
            parallel = wl.get("parallel")
            if isinstance(parallel, dict) and not isinstance(
                    parallel.get("workers_requested"), int):
                problems.append(
                    f"workload {name!r}: parallel row lacks "
                    "'workers_requested'")
        cpu = workloads.get("cpu")
        if isinstance(cpu, dict) and not isinstance(
                cpu.get("workers_clamped"), bool):
            problems.append(
                "workload 'cpu': missing 'workers_clamped' flag (the "
                "artefact must record whether the cpu-bound pool was "
                "clamped to the visible CPU count)")
        cache = workloads.get("cache")
        if not isinstance(cache, dict):
            problems.append("missing workload 'cache'")
        else:
            for row in ("cold", "warm"):
                if not isinstance(cache.get(row), dict):
                    problems.append(f"workload 'cache': missing {row!r}")
            if cache.get("cached_matches_evaluated") is not True:
                problems.append(
                    "workload 'cache': cached_matches_evaluated is not "
                    "true")
    return problems
