"""repro.perf -- the campaign execution-performance layer.

Two independent accelerators for coverage campaigns, both preserving
byte-identical results:

* :mod:`repro.perf.executor` -- a process-pool work-unit executor
  fanning the sweep across cores (out-of-order execution, in-order
  effects), supervised by :mod:`repro.perf.supervisor` so worker
  death, hangs and poison units heal instead of aborting the run;
* :mod:`repro.perf.cache` -- a content-addressed evaluation cache
  (keyed by :mod:`repro.perf.fingerprint`) so repeated sweeps skip
  already-simulated points, mirroring the paper's database of
  pre-calculated simulation results.

A third accelerator changes the *amount* of work instead of its
schedule: :mod:`repro.perf.frontier` exploits the paper's monotone
detection frontiers to answer a sweep's whole R axis from one threshold
pass per (site, condition) -- guarded by cross-check sampling and
per-site exact fallback so the records stay byte-identical
(``CampaignRunner(strategy="frontier")``).

A fourth removes the per-site Python loop altogether:
:mod:`repro.perf.batch` answers each (kind, condition) group's full
site x R grid in one vectorised ``evaluate_batch`` call whose closed
forms replicate the scalar float arithmetic operation-for-operation,
guarded by the same cross-check/demotion machinery and whole-group
scalar fallback (``CampaignRunner(strategy="batch")``; see
``docs/batch_kernel.md``).

All plug into :class:`repro.runner.campaign.CampaignRunner` via its
``workers=``, ``cache=`` and ``strategy=`` arguments; the benchmark
harnesses live in :mod:`repro.perf.bench` and
:mod:`repro.perf.frontier_bench`.  See ``docs/performance.md``.
"""

from repro.perf.batch import BatchEvaluator, BatchStats
from repro.perf.cache import (
    EvaluationCache,
    frontier_cache_key,
    unit_cache_key,
)
from repro.perf.counting import CountingBehaviorModel, CountingTester
from repro.perf.executor import (
    ParallelUnitExecutor,
    WorkerInitError,
    chunk_units,
)
from repro.perf.supervisor import SupervisedUnitExecutor, SupervisorStats
from repro.perf.fingerprint import (
    FingerprintError,
    behavior_fingerprint,
    fingerprint_digest,
    fingerprint_document,
    population_fingerprint,
)
from repro.perf.frontier import (
    FrontierPolicy,
    FrontierStats,
    FrontierUnitEvaluator,
)

__all__ = [
    "BatchEvaluator",
    "BatchStats",
    "EvaluationCache",
    "frontier_cache_key",
    "unit_cache_key",
    "CountingBehaviorModel",
    "CountingTester",
    "ParallelUnitExecutor",
    "SupervisedUnitExecutor",
    "SupervisorStats",
    "WorkerInitError",
    "chunk_units",
    "FingerprintError",
    "behavior_fingerprint",
    "fingerprint_digest",
    "fingerprint_document",
    "population_fingerprint",
    "FrontierPolicy",
    "FrontierStats",
    "FrontierUnitEvaluator",
]
