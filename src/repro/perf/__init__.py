"""repro.perf -- the campaign execution-performance layer.

Two independent accelerators for coverage campaigns, both preserving
byte-identical results:

* :mod:`repro.perf.executor` -- a process-pool work-unit executor
  fanning the sweep across cores (out-of-order execution, in-order
  effects);
* :mod:`repro.perf.cache` -- a content-addressed evaluation cache
  (keyed by :mod:`repro.perf.fingerprint`) so repeated sweeps skip
  already-simulated points, mirroring the paper's database of
  pre-calculated simulation results.

Both plug into :class:`repro.runner.campaign.CampaignRunner` via its
``workers=`` and ``cache=`` arguments; the benchmark harness lives in
:mod:`repro.perf.bench`.  See ``docs/performance.md``.
"""

from repro.perf.cache import EvaluationCache, unit_cache_key
from repro.perf.executor import ParallelUnitExecutor, chunk_units
from repro.perf.fingerprint import (
    FingerprintError,
    behavior_fingerprint,
    fingerprint_digest,
    fingerprint_document,
    population_fingerprint,
)

__all__ = [
    "EvaluationCache",
    "unit_cache_key",
    "ParallelUnitExecutor",
    "chunk_units",
    "FingerprintError",
    "behavior_fingerprint",
    "fingerprint_digest",
    "fingerprint_document",
    "population_fingerprint",
]
