"""Invocation-counting wrappers: speedup claims as call-count facts.

Wall-clock timings are machine- and load-dependent; invocation counts
are not.  These wrappers let benchmarks and tests assert the frontier
fast paths (:mod:`repro.perf.frontier`, the boundary-traced shmoo in
:mod:`repro.tester.shmoo`) as *deterministic call-count inequalities*
-- "the frontier sweep issued 5x fewer ``fails_condition`` calls" --
instead of flaky timing comparisons.

Both wrappers are transparent: they delegate every evaluation verbatim
(records and grids stay byte-identical to unwrapped runs) and keep
their counters in underscore-prefixed attributes, which the structural
fingerprinting of :mod:`repro.perf.fingerprint` skips -- so counting a
campaign does not fork its cache-key space beyond the wrapper class
name itself.
"""

from __future__ import annotations

from typing import Any

__all__ = ["CountingBehaviorModel", "CountingEventBus", "CountingTester"]


class CountingBehaviorModel:
    """A behaviour model that counts its evaluation calls.

    Counts ``fails_condition`` and ``manifestation`` calls (the two
    evaluation entry points); frontier declarations
    (``resistance_frontier`` / ``resistance_monotonicity``) delegate
    *uncounted* -- they are capability probes, not evaluations, and the
    whole point of the frontier solver is that a declaration replaces
    many evaluations.  Other attributes delegate transparently, so the
    wrapper composes with any model exposing the duck interface.

    Args:
        inner: The behaviour model to wrap.
    """

    def __init__(self, inner: Any) -> None:
        self.inner = inner
        self._calls = 0

    @property
    def calls(self) -> int:
        """Evaluation calls issued through this wrapper so far."""
        return self._calls

    def reset(self) -> None:
        """Zero the call counter."""
        self._calls = 0

    def fails_condition(self, defect: Any, condition: Any) -> bool:
        """Counted delegation to the inner model's fast predicate."""
        self._calls += 1
        return self.inner.fails_condition(defect, condition)

    def manifestation(self, defect: Any, condition: Any) -> Any:
        """Counted delegation to the inner model's full evaluation."""
        self._calls += 1
        return self.inner.manifestation(defect, condition)

    def __getattr__(self, name: str) -> Any:
        """Uncounted delegation of everything else (declarations,
        calibration attributes, analytic helpers)."""
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)


class CountingTester:
    """A virtual tester that counts ``test_device`` invocations.

    The shmoo benchmark's unit of cost is one tester invocation (one
    march-test execution at one grid point); this wrapper makes that
    count observable from outside the runner, so tests can verify the
    runner's self-reported statistics against an independent tally.

    Args:
        inner: The :class:`~repro.tester.ate.VirtualTester` to wrap.
    """

    def __init__(self, inner: Any) -> None:
        self.inner = inner
        self._calls = 0

    @property
    def calls(self) -> int:
        """``test_device`` calls issued through this wrapper so far."""
        return self._calls

    def reset(self) -> None:
        """Zero the call counter."""
        self._calls = 0

    def test_device(self, *args: Any, **kwargs: Any) -> Any:
        """Counted delegation to the inner tester."""
        self._calls += 1
        return self.inner.test_device(*args, **kwargs)

    def __getattr__(self, name: str) -> Any:
        """Uncounted delegation of everything else."""
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)


class CountingEventBus:
    """An event bus that counts its ``emit`` invocations.

    Wraps a real :class:`~repro.obs.bus.EventBus` and delegates
    everything; only ``emit`` is counted.  The observability layer's
    cost claim -- *journal off means zero event-bus invocations on the
    hot path* -- becomes a call-count assertion with this wrapper, the
    same way :class:`CountingBehaviorModel` turns speedup claims into
    call-count inequalities.

    Args:
        inner: The :class:`~repro.obs.bus.EventBus` to wrap.
    """

    def __init__(self, inner: Any) -> None:
        self.inner = inner
        self._calls = 0

    @property
    def calls(self) -> int:
        """``emit`` calls issued through this wrapper so far."""
        return self._calls

    def reset(self) -> None:
        """Zero the call counter."""
        self._calls = 0

    def emit(self, name: str, **data: Any) -> Any:
        """Counted delegation to the inner bus."""
        self._calls += 1
        return self.inner.emit(name, **data)

    def __getattr__(self, name: str) -> Any:
        """Uncounted delegation of everything else (``set_meta``,
        ``flush``, ``render``, ``events``...)."""
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)
