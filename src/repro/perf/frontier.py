"""Monotone-frontier sweep solver: thresholds once, comparisons forever.

The campaign sweep asks the behaviour model the same structural
question |R| times per (site, condition): *is this site detected at
resistance R?*  But the paper's physics makes the answer monotone in R
(Section 4.1, Figure 8) -- a bridge is detected at or below a critical
resistance, an open at or above a threshold -- so the whole R axis of
one (site, condition) pair is characterised by a single frontier.  This
module exploits that:

1. per (kind, condition) group, each site's detection row over the
   sweep's resistance grid is derived **once** -- from the model's
   vectorised :meth:`~repro.defects.behavior.DefectBehaviorModel.
   evaluate_batch` hook when available (one numpy call for the whole
   group; see :mod:`repro.perf.batch`), else from the closed-form
   :meth:`~repro.defects.behavior.DefectBehaviorModel.
   resistance_frontier` (zero model calls), else by bisecting
   ``fails_condition`` over the grid under the declared
   :meth:`~repro.defects.behavior.DefectBehaviorModel.
   resistance_monotonicity` (O(log |R|) calls);
2. every work unit of the group then answers by table lookup.

**Exactness is guarded, not assumed.**  Frontier predicates replicate
the exact model's float arithmetic, and three fallbacks demote a site
to plain per-unit exact evaluation: the model declares no frontier and
no monotonicity; an analytic frontier's derived row is not monotone in
the declared orientation; or a seeded cross-check sample of (site, R)
cells -- re-evaluated through ``fails_condition`` -- disagrees with the
derived row.  A demoted site is evaluated exactly for every unit, so
the emitted records are byte-identical to the exact path either way.

Exact-path equivalence: tests/perf/test_frontier.py

Derived group tables are content-addressed into the evaluation cache
(:func:`repro.perf.cache.frontier_cache_key`) alongside unit payloads,
so repeated frontier campaigns skip even the threshold pass.

Caveat (chaos harness): :class:`~repro.runner.chaos.ChaosBehaviorModel`
intercepts only ``fails_condition``; analytic frontiers bypass it (and
the wrapper declines ``evaluate_batch`` outright), so a frontier
campaign probes the chaos hook far less often than an exact one.  Recovery *semantics* are unchanged -- cross-check and fallback
calls still go through the wrapper -- but soak tests that count
injected faults should run ``strategy="exact"``.
"""

from __future__ import annotations

import math
import random
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.defects.models import Defect, DefectKind
from repro.ifa.flow import CoverageRecord
from repro.runner.evaluate import UnitOutcome
from repro.runner.retry import (
    DEFAULT_UNIT_POLICY,
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
    run_with_retry,
)
from repro.runner.units import WorkUnit

__all__ = [
    "FrontierPolicy",
    "FrontierStats",
    "FrontierUnitEvaluator",
]

#: Orientations a model may declare for the R axis.
_ORIENTATIONS = ("detected_below", "detected_above")

#: Schema tag of cached group-table payloads.
TABLE_SCHEMA = "repro.frontier-table/1"


@dataclass(frozen=True)
class FrontierPolicy:
    """Knobs of the frontier fast path.

    Attributes:
        crosscheck_fraction: Fraction of each group's derived (site, R)
            cells re-evaluated exactly as a consistency guard; a
            disagreeing site is demoted to exact evaluation.  0 trusts
            the declarations outright (cached tables are always
            trusted: their key proves they were derived -- and
            cross-checked -- under identical inputs); 1.0 checks every
            cell, making the solver exact-by-construction (and no
            faster than the exact path).
        batch_crosscheck_fraction: Cell fraction used by
            :class:`~repro.perf.batch.BatchEvaluator` instead of
            ``crosscheck_fraction``.  The default is smaller because
            the sampled populations differ in kind: frontier rows are
            derived per site (independent declarations, so the sample
            must cover sites), while one ``evaluate_batch`` call
            answers every row from a single shared vectorised codepath
            -- a lying implementation is wrong in a correlated,
            class-wide way that a sparse sample still catches, and the
            scalar-oracle equivalence tests guard the kernel itself.
            Raise it (up to 1.0) when evaluating an untrusted
            third-party hook.
        crosscheck_seed: Seed of the deterministic cell sample.
    """

    crosscheck_fraction: float = 0.05
    batch_crosscheck_fraction: float = 0.01
    crosscheck_seed: int = 20050806

    def __post_init__(self) -> None:
        if not 0.0 <= self.batch_crosscheck_fraction <= 1.0:
            raise ValueError(
                "batch_crosscheck_fraction must be in [0, 1]")
        if not 0.0 <= self.crosscheck_fraction <= 1.0:
            raise ValueError("crosscheck_fraction must be in [0, 1]")


@dataclass
class FrontierStats:
    """Counters describing one frontier evaluator's work.

    Attributes:
        groups: (kind, condition) groups whose table was derived.
        cached_groups: Groups served from the evaluation cache.
        sites: Site decisions made across all derived groups.
        batch_sites: Sites whose detection row came straight out of the
            model's vectorised ``evaluate_batch`` hook (zero scalar
            model invocations; see :mod:`repro.perf.batch`).  Batch
            rows are still shape-checked against any declared
            monotonicity and cross-checked like analytic rows.
        analytic_sites: Sites answered by a closed-form frontier
            (zero model invocations).
        bisection_sites: Sites answered by bisecting ``fails_condition``
            under a declared monotonicity.
        exact_sites: Sites the model declined to declare (evaluated
            exactly per unit).
        demoted_sites: Declared sites demoted to exact evaluation by a
            failed shape check or cross-check.
        model_invocations: Total ``fails_condition`` calls issued by
            this evaluator (bisection + cross-check + exact fallback);
            the benchmark's headline reduction compares this against
            the exact path's sites x |R| x conditions.
        crosscheck_invocations: Subset of ``model_invocations`` spent
            on the consistency guard.
        crosscheck_mismatches: Cross-checked cells that disagreed with
            the derived row (each demotes its site).
        nonmonotone_rejects: Analytic rows rejected by the monotone
            shape check before any cross-check.
        demotions: Forensic ledger of every fast-path rejection: one
            ``{"kind", "condition", "site_index", "reason", "stage",
            "error"}`` entry per event.  ``reason`` is one of
            ``lying-model`` (cross-check disagreed), ``non-monotone``
            (analytic row contradicted its orientation) or
            ``probe-error`` (a declaration, frontier evaluation or
            check raised; ``error`` then names the exception).
            Declaration-stage entries do not bump ``demoted_sites`` --
            an undeclared site was never on the fast path.
        group_log: One ``{"kind", "condition", "sites", "cached"}``
            entry per (kind, condition) group table built or served
            from cache, in build order.
    """

    groups: int = 0
    cached_groups: int = 0
    sites: int = 0
    batch_sites: int = 0
    analytic_sites: int = 0
    bisection_sites: int = 0
    exact_sites: int = 0
    demoted_sites: int = 0
    model_invocations: int = 0
    crosscheck_invocations: int = 0
    crosscheck_mismatches: int = 0
    nonmonotone_rejects: int = 0
    demotions: list[dict[str, Any]] = field(default_factory=list)
    group_log: list[dict[str, Any]] = field(default_factory=list)

    def record_demotion(self, kind: DefectKind, condition: Any,
                        site_index: int, reason: str, stage: str,
                        error: str | None = None) -> None:
        """Append one demotion-ledger entry (never drops the cause)."""
        self.demotions.append({
            "kind": kind.value,
            "condition": condition.name,
            "site_index": site_index,
            "reason": reason,
            "stage": stage,
            "error": error,
        })

    def as_dict(self) -> dict[str, Any]:
        """Counters plus ledgers as a plain JSON-serialisable dict."""
        return {
            "groups": self.groups,
            "cached_groups": self.cached_groups,
            "sites": self.sites,
            "batch_sites": self.batch_sites,
            "analytic_sites": self.analytic_sites,
            "bisection_sites": self.bisection_sites,
            "exact_sites": self.exact_sites,
            "demoted_sites": self.demoted_sites,
            "model_invocations": self.model_invocations,
            "crosscheck_invocations": self.crosscheck_invocations,
            "crosscheck_mismatches": self.crosscheck_mismatches,
            "nonmonotone_rejects": self.nonmonotone_rejects,
            "demotions": [dict(d) for d in self.demotions],
            "group_log": [dict(g) for g in self.group_log],
        }


@dataclass
class _GroupTable:
    """Derived detection rows of one (kind, condition) group.

    Attributes:
        grid: Ascending unique resistance grid of the group.
        index_of: Resistance -> grid index (plan resistances are reused
            verbatim, so float equality is exact).
        decisions: Per site: a detection row aligned with ``grid``, or
            ``None`` when the site must be evaluated exactly per unit.
    """

    grid: list[float]
    index_of: dict[float, int]
    decisions: list[list[bool] | None] = field(default_factory=list)


def _is_monotone(row: Sequence[bool], orientation: str) -> bool:
    """True when a detection row matches its declared orientation."""
    if orientation == "detected_below":
        return all(row[i] or not row[i + 1] for i in range(len(row) - 1))
    return all(not row[i] or row[i + 1] for i in range(len(row) - 1))


class FrontierUnitEvaluator:
    """Drop-in :class:`~repro.runner.evaluate.UnitEvaluator` using
    frontier tables.

    Presents the same ``evaluate(unit) -> UnitOutcome`` interface and
    emits identical :class:`~repro.ifa.flow.CoverageRecord` payloads;
    the difference is *how many times* the behaviour model runs.  Group
    tables are built lazily on the first unit of each (kind, condition)
    group; retry counters spent on a group's threshold pass are folded
    into that triggering unit's outcome so campaign-wide tallies stay
    complete.

    Args:
        campaign: The :class:`~repro.ifa.flow.IfaCampaign`-shaped
            object supplying site populations and the behaviour model.
        plan: The **full** unit plan (not only pending units) -- the
            group resistance grids must be derived from the complete
            sweep so cached tables are content-addressed identically
            regardless of checkpoint/cache state.
        retry: Per-site retry policy (shared with the exact path).
        policy: Frontier knobs (cross-check fraction and seed).
        cache: Optional :class:`~repro.perf.cache.EvaluationCache`;
            derived group tables are stored/served under
            :func:`~repro.perf.cache.frontier_cache_key`.
        unit_deadline: Optional wall-clock budget (seconds) for one
            unit's per-site loop.  Group-table derivation is excluded:
            it amortises over the whole group, so charging it to the
            triggering unit would trip the budget spuriously.
        sleep: Injectable sleep for the retry machinery.
        clock: Injectable monotonic clock for deadlines.
    """

    def __init__(self, campaign: Any, plan: Sequence[WorkUnit],
                 retry: RetryPolicy | None = None,
                 policy: FrontierPolicy | None = None,
                 cache: Any = None,
                 unit_deadline: float | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if unit_deadline is not None and unit_deadline <= 0:
            raise ValueError("unit_deadline must be positive")
        self.campaign = campaign
        self.retry = retry if retry is not None else DEFAULT_UNIT_POLICY
        self.policy = policy if policy is not None else FrontierPolicy()
        self.cache = cache
        self.unit_deadline = unit_deadline
        self.sleep = sleep
        self.clock = clock
        self.stats = FrontierStats()
        self._populations: dict[DefectKind, list[Defect]] = {}
        self._grids: dict[tuple[DefectKind, Any], list[float]] = {}
        for unit in plan:
            key = (unit.kind, unit.condition)
            grid = self._grids.setdefault(key, [])
            if unit.resistance not in grid:
                grid.append(unit.resistance)
        for grid in self._grids.values():
            grid.sort()
        self._groups: dict[tuple[DefectKind, Any], _GroupTable] = {}
        self._pending_group_stats = RetryStats()

    # ------------------------------------------------------------------
    # Population / model access
    # ------------------------------------------------------------------
    def population(self, kind: DefectKind) -> list[Defect]:
        """The campaign's (cached) site population for one defect kind."""
        if kind not in self._populations:
            self._populations[kind] = (
                self.campaign.bridge_population()
                if kind is DefectKind.BRIDGE
                else self.campaign.open_population())
        return self._populations[kind]

    def _call_model(self, defect: Defect, condition: Any, key: str,
                    stats: RetryStats) -> bool:
        """One retry-wrapped, counted ``fails_condition`` call."""
        behavior = self.campaign.behavior
        self.stats.model_invocations += 1
        return run_with_retry(
            lambda: behavior.fails_condition(defect, condition),
            self.retry, key, sleep=self.sleep, clock=self.clock,
            stats=stats)

    def _declared(self, behavior: Any, name: str, defect: Defect,
                  condition: Any, kind: DefectKind,
                  site_index: int) -> Any:
        """A model declaration, or ``None`` when absent or raising.

        Declarations are capability probes, never obligations: a model
        (or wrapper) without the method, or whose declaration raises,
        simply routes the site to the exact path.  A *raising*
        declaration is recorded in the demotion ledger (reason
        ``probe-error``, stage ``declaration``) rather than swallowed
        -- the site was never on the fast path, so ``demoted_sites``
        is not bumped, but the cause must not vanish.
        """
        fn = getattr(behavior, name, None)
        if fn is None:
            return None
        try:
            return fn(defect, condition)
        except Exception as exc:
            self.stats.record_demotion(
                kind, condition, site_index, "probe-error", "declaration",
                error=f"{name}: {type(exc).__name__}: {exc}")
            return None

    # ------------------------------------------------------------------
    # Group tables
    # ------------------------------------------------------------------
    def _table_cache_key(self, kind: DefectKind, condition: Any,
                         grid: Sequence[float]) -> str | None:
        """Content-addressed cache key of one group table (or None)."""
        if self.cache is None:
            return None
        from repro.perf.cache import frontier_cache_key
        from repro.perf.fingerprint import (
            FingerprintError,
            behavior_fingerprint,
            population_fingerprint,
        )

        try:
            return frontier_cache_key(
                behavior_fingerprint(self.campaign.behavior),
                population_fingerprint(self.campaign, kind),
                grid, condition)
        except FingerprintError:
            return None

    def _cached_table(self, key: str | None, n_sites: int,
                      n_grid: int) -> list[list[bool] | None] | None:
        """Validated decision rows from the cache, or ``None``."""
        if key is None:
            return None
        payload = self.cache.get(key)
        if payload is None or payload.get("schema") != TABLE_SCHEMA:
            return None
        rows = payload.get("decisions")
        if not isinstance(rows, list) or len(rows) != n_sites:
            return None
        decisions: list[list[bool] | None] = []
        for row in rows:
            if row is None:
                decisions.append(None)
            elif isinstance(row, list) and len(row) == n_grid:
                decisions.append([bool(v) for v in row])
            else:
                return None
        return decisions

    def _group(self, kind: DefectKind, condition: Any) -> _GroupTable:
        """The (lazily built) group table for one (kind, condition)."""
        gkey = (kind, condition)
        table = self._groups.get(gkey)
        if table is not None:
            return table
        grid = self._grids.get(gkey, [])
        population = self.population(kind)
        index_of = {r: j for j, r in enumerate(grid)}
        cache_key = self._table_cache_key(kind, condition, grid)
        cached = self._cached_table(cache_key, len(population), len(grid))
        if cached is not None:
            self.stats.cached_groups += 1
            self.stats.group_log.append({
                "kind": kind.value,
                "condition": condition.name,
                "sites": len(population),
                "cached": True,
            })
            table = _GroupTable(grid, index_of, cached)
            self._groups[gkey] = table
            return table
        decisions = self._derive_group(kind, condition, grid, population)
        self.stats.groups += 1
        self.stats.sites += len(population)
        self.stats.group_log.append({
            "kind": kind.value,
            "condition": condition.name,
            "sites": len(population),
            "cached": False,
        })
        if cache_key is not None:
            self.cache.put(cache_key, {
                "schema": TABLE_SCHEMA,
                "decisions": decisions,
            })
        table = _GroupTable(grid, index_of, decisions)
        self._groups[gkey] = table
        return table

    def _batch_rows(self, kind: DefectKind, condition: Any,
                    grid: list[float], population: Sequence[Defect],
                    ) -> list[list[bool]] | None:
        """Candidate detection rows from ``evaluate_batch``, or ``None``.

        One vectorised call answers the whole group; the hook is a
        capability probe like the frontier declarations -- absent or
        ``None`` routes derivation to the per-site path silently, a
        raising hook or a wrong-shape result does the same but leaves a
        group-level demotion entry (``site_index=-1``, stage
        ``batch``).  Rows returned here are *candidates*: they still
        face the per-site shape check and the group cross-check.
        """
        behavior = self.campaign.behavior
        hook = getattr(behavior, "evaluate_batch", None)
        if hook is None:
            return None
        import numpy as np
        try:
            matrix = np.asarray(hook(population, list(grid), condition),
                                dtype=bool)
        except Exception as exc:
            self.stats.record_demotion(
                kind, condition, -1, "probe-error", "batch",
                error=f"evaluate_batch: {type(exc).__name__}: {exc}")
            return None
        expected = (len(population), len(grid))
        if matrix.shape != expected:
            self.stats.record_demotion(
                kind, condition, -1, "bad-shape", "batch",
                error=f"evaluate_batch returned shape {matrix.shape}, "
                      f"expected {expected}")
            return None
        return list(matrix.tolist())

    def _derive_group(self, kind: DefectKind, condition: Any,
                      grid: list[float], population: Sequence[Defect],
                      ) -> list[list[bool] | None]:
        """Derive (and cross-check) every site's detection row.

        Sources, in preference order: the vectorised batch hook (one
        call for the whole group), a closed-form frontier, bisection
        under a declared monotonicity, exact per-unit fallback.  Batch
        rows are shape-checked against any declared monotonicity and
        cross-checked exactly like analytic rows.
        """
        behavior = self.campaign.behavior
        batch_rows = self._batch_rows(kind, condition, grid, population)
        if batch_rows is not None:
            decisions_b: list[list[bool] | None] = []
            for site_index, site in enumerate(population):
                row_b: list[bool] | None = batch_rows[site_index]
                orientation = self._declared(
                    behavior, "resistance_monotonicity", site, condition,
                    kind, site_index)
                if (orientation in _ORIENTATIONS and row_b is not None
                        and not _is_monotone(row_b, orientation)):
                    # The batch row contradicts the model's own
                    # declared orientation: distrust it entirely.
                    self.stats.nonmonotone_rejects += 1
                    self.stats.demoted_sites += 1
                    self.stats.record_demotion(
                        kind, condition, site_index, "non-monotone",
                        "shape-check")
                    row_b = None
                elif row_b is not None:
                    self.stats.batch_sites += 1
                decisions_b.append(row_b)
            self._crosscheck(kind, condition, grid, population,
                             decisions_b)
            return decisions_b
        decisions: list[list[bool] | None] = []
        for site_index, site in enumerate(population):
            row: list[bool] | None = None
            frontier = self._declared(behavior, "resistance_frontier",
                                      site, condition, kind, site_index)
            if frontier is not None:
                try:
                    row = [bool(frontier.detects(r)) for r in grid]
                except Exception as exc:
                    row = None
                    self.stats.demoted_sites += 1
                    self.stats.record_demotion(
                        kind, condition, site_index, "probe-error",
                        "analytic",
                        error=f"{type(exc).__name__}: {exc}")
                if row is not None and not _is_monotone(
                        row, frontier.orientation):
                    # The closed form contradicts its own declared
                    # orientation: distrust it entirely.
                    self.stats.nonmonotone_rejects += 1
                    self.stats.demoted_sites += 1
                    self.stats.record_demotion(
                        kind, condition, site_index, "non-monotone",
                        "shape-check")
                    row = None
                elif row is not None:
                    self.stats.analytic_sites += 1
            if row is None and frontier is None:
                orientation = self._declared(
                    behavior, "resistance_monotonicity", site, condition,
                    kind, site_index)
                if orientation in _ORIENTATIONS:
                    row = self._bisect_row(site, condition, grid,
                                           orientation,
                                           f"frontier:{kind.value}:"
                                           f"{condition.name}"
                                           f"#site{site_index}",
                                           kind, site_index)
                    if row is not None:
                        self.stats.bisection_sites += 1
                else:
                    self.stats.exact_sites += 1
            elif row is None:
                # Analytic frontier rejected above: exact per unit.
                pass
            decisions.append(row)
        self._crosscheck(kind, condition, grid, population, decisions)
        return decisions

    def _bisect_row(self, site: Defect, condition: Any,
                    grid: Sequence[float], orientation: str,
                    key: str, kind: DefectKind,
                    site_index: int) -> list[bool] | None:
        """Detection row by bisection over a declared-monotone axis.

        Locates the first index past the frontier with O(log |grid|)
        exact ``fails_condition`` calls and floods the rest of the row.
        Returns ``None`` (exact fallback) when an evaluation exhausts
        its retries -- recorded in the demotion ledger (reason
        ``probe-error``, stage ``bisection``); the per-unit path will
        retry and, if still failing, quarantine the site with the exact
        path's semantics.
        """
        # Normalise to "find the first True index" by flipping the
        # detected_below row (True prefix -> True suffix).
        flip = orientation == "detected_below"
        known: dict[int, bool] = {}

        def probe(j: int) -> bool:
            if j not in known:
                defect = site.with_resistance(grid[j])
                value = self._call_model(defect, condition,
                                         f"{key}@{grid[j]!r}",
                                         self._pending_group_stats)
                known[j] = (not value) if flip else value
            return known[j]

        n = len(grid)
        try:
            if n == 0:
                return []
            if not probe(n - 1):
                first = n
            elif probe(0):
                first = 0
            else:
                lo, hi = 0, n - 1
                while hi - lo > 1:
                    mid = (lo + hi) // 2
                    if probe(mid):
                        hi = mid
                    else:
                        lo = mid
                first = hi
        except RetryExhaustedError as exc:
            self.stats.record_demotion(
                kind, condition, site_index, "probe-error", "bisection",
                error=f"{type(exc).__name__}: {exc}")
            return None
        row = [j >= first for j in range(n)]
        if flip:
            row = [not v for v in row]
        return row

    def _crosscheck(self, kind: DefectKind, condition: Any,
                    grid: Sequence[float], population: Sequence[Defect],
                    decisions: list[list[bool] | None]) -> None:
        """Re-evaluate a seeded cell sample exactly; demote liars.

        Mutates ``decisions`` in place: any site whose derived row
        disagrees with an exact evaluation -- or whose check exhausts
        its retries -- is set to ``None`` (exact per-unit fallback).
        """
        fraction = self.policy.crosscheck_fraction
        if fraction <= 0.0 or not grid:
            return
        decided = [i for i, row in enumerate(decisions) if row is not None]
        total = len(decided) * len(grid)
        if total == 0:
            return
        samples = min(total, max(1, math.ceil(fraction * total)))
        rng = random.Random(f"{self.policy.crosscheck_seed}:"
                            f"{kind.value}:{condition.name}:{len(grid)}")
        for cell in rng.sample(range(total), samples):
            ordinal, j = divmod(cell, len(grid))
            site_index = decided[ordinal]
            row = decisions[site_index]
            if row is None:
                continue  # already demoted by an earlier sample
            defect = population[site_index].with_resistance(grid[j])
            self.stats.crosscheck_invocations += 1
            try:
                exact = self._call_model(
                    defect, condition,
                    f"frontier-check:{kind.value}:{condition.name}"
                    f"#site{site_index}@{grid[j]!r}",
                    self._pending_group_stats)
            except RetryExhaustedError as exc:
                decisions[site_index] = None
                self.stats.demoted_sites += 1
                self.stats.record_demotion(
                    kind, condition, site_index, "probe-error",
                    "crosscheck", error=f"{type(exc).__name__}: {exc}")
                continue
            if exact != row[j]:
                decisions[site_index] = None
                self.stats.crosscheck_mismatches += 1
                self.stats.demoted_sites += 1
                self.stats.record_demotion(
                    kind, condition, site_index, "lying-model",
                    "crosscheck",
                    error=f"derived row says {row[j]}, exact says "
                          f"{exact} at R={grid[j]!r}")

    # ------------------------------------------------------------------
    # Unit evaluation
    # ------------------------------------------------------------------
    def evaluate(self, unit: WorkUnit) -> UnitOutcome:
        """Evaluate one unit from its group table (exact where demoted).

        Args:
            unit: The (kind, R, condition) cell to evaluate.

        Returns:
            A :class:`~repro.runner.evaluate.UnitOutcome` whose record
            is byte-identical to the exact path's.

        Raises:
            UnitDeadlineExceeded: the per-site fallback loop overran
                ``unit_deadline``.
        """
        from repro.runner.evaluate import UnitDeadlineExceeded

        table = self._group(unit.kind, unit.condition)
        j = table.index_of.get(unit.resistance)
        population = self.population(unit.kind)
        cond = unit.condition
        stats = RetryStats()
        # Attribute retry counters spent deriving the group to the unit
        # that triggered the build, so campaign tallies stay complete.
        stats.merge(self._pending_group_stats)
        self._pending_group_stats = RetryStats()
        started = self.clock()
        detected = 0
        entries: list[dict[str, Any]] = []
        for site_index, site in enumerate(population):
            row = table.decisions[site_index] if j is not None else None
            if row is not None:
                if row[j]:
                    detected += 1
                continue
            defect = site.with_resistance(unit.resistance)
            site_key = f"{unit.unit_id}#site{site_index}"
            try:
                if self._call_model(defect, cond, site_key, stats):
                    detected += 1
            except RetryExhaustedError as exc:
                entries.append({
                    "unit_id": unit.unit_id,
                    "site_index": site_index,
                    "defect": str(defect),
                    "attempts": exc.attempts,
                    "error": f"{type(exc.causes[-1]).__name__}: "
                             f"{exc.causes[-1]}",
                    "deadline_hit": exc.deadline_hit,
                })
            if (self.unit_deadline is not None
                    and self.clock() - started > self.unit_deadline):
                raise UnitDeadlineExceeded(
                    f"{unit} exceeded its {self.unit_deadline:g}s budget "
                    f"after {site_index + 1}/{len(population)} sites; "
                    "completed units are checkpointed -- fix the stall "
                    "and resume")
        record = CoverageRecord(
            kind=unit.kind.value,
            resistance=unit.resistance,
            condition=cond.name,
            vdd=cond.vdd,
            period=cond.period,
            detected=detected,
            total=len(population),
            errors=len(entries),
        )
        return UnitOutcome(index=unit.index, unit_id=unit.unit_id,
                           record=record, quarantine=entries, stats=stats)
