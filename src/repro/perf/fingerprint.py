"""Content fingerprints: the identity half of the evaluation cache.

A cached coverage result may be served *only* when every input that
could change it is provably unchanged.  The paper's "database with
pre-calculated simulation results" (Section 3) has the same contract:
the database is valid for one technology, one calibration, one defect
population -- recalibrate anything and the rows must be regenerated.

This module turns the evaluation inputs into deterministic, canonical
JSON documents ("fingerprints") that are hashed into cache keys by
:mod:`repro.perf.cache`:

* :func:`behavior_fingerprint` -- the behavioural model: class identity
  plus every calibration constant (technology corner, timing model,
  :class:`~repro.defects.behavior.BehaviorParams`).  Changing a single
  constant changes the fingerprint, which silently invalidates every
  cached row computed under the old calibration -- stale results are
  *unreachable*, not flushed.
* :func:`population_fingerprint` -- the site population: geometry,
  extractor configuration, population size, seed and defect kind.
  Populations are regenerated deterministically from these values, so
  they identify the population exactly.

Fingerprinting is structural: dataclasses, enums, primitives,
containers and plain attribute-holding objects are walked recursively.
Objects that cannot be canonicalised (RNG handles, callables, open
files...) raise :class:`FingerprintError` -- refusing to cache beats
serving a result whose provenance cannot be named.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any

from repro.runner.atomic import canonical_json

#: Attribute prefixes skipped when walking plain objects: private state
#: (memoisation caches, lazily built tables) is derived, not identity.
_PRIVATE_PREFIX = "_"


class FingerprintError(TypeError):
    """An evaluation input cannot be canonicalised into a fingerprint.

    Raised instead of guessing: a cache keyed on an incomplete
    fingerprint could serve stale results after the un-fingerprintable
    part changes.  The message names the offending attribute path.
    """


def fingerprint_document(obj: Any, _path: str = "$",
                         _seen: frozenset[int] = frozenset()) -> Any:
    """Convert ``obj`` into a deterministic JSON-serialisable document.

    Supported shapes: ``None``/``bool``/``int``/``float``/``str``,
    enums (class + value), dataclasses (class + fields), mappings with
    string keys, sequences, sets (sorted), numpy scalars and arrays,
    and plain objects (class + public attributes, recursively).

    Args:
        obj: The value to canonicalise.
        _path: Attribute path accumulated for error messages.
        _seen: Object ids on the current recursion path (cycle guard).

    Returns:
        A JSON-serialisable structure that is equal for equal inputs
        and differs whenever any reachable public state differs.

    Raises:
        FingerprintError: ``obj`` (or something reachable from it)
            cannot be canonicalised, or the structure is cyclic.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips exactly; avoids JSON float re-encoding drift.
        # Coerce first: numpy.float64 subclasses float but reprs as
        # "np.float64(x)", which would fork the key space.
        return ["f", repr(float(obj))]
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__qualname__, obj.value]
    # numpy scalars/arrays without importing numpy eagerly.
    item = getattr(obj, "item", None)
    if item is not None and type(obj).__module__.startswith("numpy"):
        tolist = getattr(obj, "tolist", None)
        value = tolist() if tolist is not None else item()
        return fingerprint_document(value, _path, _seen)
    if id(obj) in _seen:
        raise FingerprintError(f"{_path}: cyclic structure "
                               f"({type(obj).__qualname__})")
    seen = _seen | {id(obj)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: fingerprint_document(getattr(obj, f.name),
                                         f"{_path}.{f.name}", seen)
            for f in dataclasses.fields(obj)
        }
        return ["dc", type(obj).__qualname__, fields]
    if isinstance(obj, dict):
        out = {}
        for key in sorted(obj, key=str):
            if not isinstance(key, str):
                raise FingerprintError(
                    f"{_path}: mapping key {key!r} is not a string")
            out[key] = fingerprint_document(obj[key], f"{_path}[{key!r}]",
                                            seen)
        return out
    if isinstance(obj, (list, tuple)):
        return [fingerprint_document(v, f"{_path}[{i}]", seen)
                for i, v in enumerate(obj)]
    if isinstance(obj, (set, frozenset)):
        members = [fingerprint_document(v, f"{_path}{{}}", seen)
                   for v in obj]
        return ["set", sorted(members, key=canonical_json)]
    attrs = getattr(obj, "__dict__", None)
    if isinstance(attrs, dict):
        fields = {
            name: fingerprint_document(value, f"{_path}.{name}", seen)
            for name, value in sorted(attrs.items())
            if not name.startswith(_PRIVATE_PREFIX)
        }
        return ["obj", type(obj).__qualname__, fields]
    raise FingerprintError(
        f"{_path}: cannot fingerprint {type(obj).__qualname__!r} "
        "(no dataclass fields, no public __dict__); disable the "
        "evaluation cache for this campaign or make the object "
        "fingerprintable")


def fingerprint_digest(obj: Any) -> str:
    """SHA-256 hex digest of :func:`fingerprint_document` of ``obj``."""
    doc = fingerprint_document(obj)
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def behavior_fingerprint(model: Any) -> Any:
    """Fingerprint a behavioural defect model.

    Covers the model's class and its full public state -- for
    :class:`~repro.defects.behavior.DefectBehaviorModel` that is the
    technology corner, the timing model and every
    :class:`~repro.defects.behavior.BehaviorParams` constant.  Wrapper
    models (chaos proxies, latency models) fingerprint as their own
    class plus their public configuration, so wrapped and bare models
    never share cache rows.

    Args:
        model: Any object with the ``fails_condition`` duck interface.

    Returns:
        A JSON-serialisable fingerprint document.

    Raises:
        FingerprintError: the model carries public state that cannot be
            canonicalised.
    """
    return fingerprint_document(model, _path="behavior")


def population_fingerprint(campaign: Any, kind: Any) -> Any:
    """Fingerprint the site population of one campaign + defect kind.

    Populations are sampled deterministically from (extractor
    configuration, geometry, ``n_sites``, ``seed``, kind), so those
    values identify the population without materialising it.

    Args:
        campaign: An :class:`~repro.ifa.flow.IfaCampaign`-shaped object
            (``geometry``, ``extractor``, ``n_sites``, ``seed``).
        kind: The :class:`~repro.defects.models.DefectKind` of the
            population.

    Returns:
        A JSON-serialisable fingerprint document.

    Raises:
        FingerprintError: a required attribute is missing or cannot be
            canonicalised.
    """
    try:
        extractor = campaign.extractor
        doc = {
            "campaign": type(campaign).__qualname__,
            "geometry": fingerprint_document(campaign.geometry,
                                             "population.geometry"),
            "n_sites": int(campaign.n_sites),
            "seed": int(campaign.seed),
            "kind": fingerprint_document(kind, "population.kind"),
            "extractor": {
                "class": type(extractor).__qualname__,
                "calibrated": bool(getattr(extractor, "calibrated", True)),
                "layout": type(getattr(extractor, "layout",
                                       None)).__qualname__,
            },
        }
    except AttributeError as exc:
        raise FingerprintError(
            f"population: campaign {type(campaign).__qualname__!r} lacks "
            f"a required attribute ({exc})") from exc
    return doc
