"""Supervised pool execution: survive worker death, hangs, poison units.

The bare :class:`~repro.perf.executor.ParallelUnitExecutor` leaves the
process pool as the campaign's single point of failure: one worker
dying (OOM, SIGKILL, tester flakiness) surfaces as
``BrokenProcessPool`` and aborts the whole run, and a *hung* worker
blocks ``future.result()`` forever because the per-unit deadline is
only enforced on the worker's own clock.  This module wraps the same
chunked execution in a supervisor with four recovery layers, moving
through a small state machine (``docs/robustness.md``):

``healthy -> rebuild -> bisect -> poison/degrade-serial``

1. **rebuild** -- a lost worker (``BrokenProcessPool``) or an overrun
   parent-side *chunk deadline* tears the pool down; a fresh pool is
   built (bounded by ``max_pool_rebuilds``) and only the
   not-yet-consumed units are re-dispatched.  Chunks that already
   finished before the breakage are salvaged, never re-evaluated.
2. **bisect** -- a chunk that keeps dying is split in half on every
   further failure, isolating the offending unit in O(log n) rebuilds.
3. **poison** -- a single unit that still kills its worker is retried
   serially in the parent; if it dies even there, it is quarantined
   into the :class:`~repro.ifa.flow.CoverageRecord` error ledger
   (``errors == total``, one ``site_index == -1`` ledger entry)
   instead of killing the campaign.
4. **degrade-serial** -- when the rebuild budget is exhausted, the
   remaining units are evaluated serially in the parent (journalled as
   ``pool.degrade_serial``) rather than aborting.

Determinism contract: outcomes are still yielded strictly in plan
order, and all supervision events (``pool.*``) are emitted parent-side
at the in-order effect point.  An undisturbed run emits no ``pool.*``
events and produces byte-identical records and journals to a serial
run; a disturbed run produces byte-identical *records* (what was
computed never depends on which process computed it).

Exceptions raised *by unit evaluation itself* -- deadline overruns,
injected crashes from the behaviour model, :exc:`~repro.perf.executor.
WorkerInitError` -- are not supervised: they propagate exactly as the
bare executor's and the serial runner's do.
"""

from __future__ import annotations

import pickle
import time
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from repro.ifa.flow import CoverageRecord
from repro.perf.executor import (
    WorkerInitError,
    _evaluate_chunk,
    _init_worker,
    _pool_context,
    chunk_units,
    make_evaluator,
    merge_outcome_injections,
    probe_worker_faults,
)
from repro.runner.evaluate import (
    UnitDeadlineExceeded,
    UnitOutcome,
)
from repro.runner.retry import RetryPolicy, RetryStats
from repro.runner.units import WorkUnit

#: Failures of one chunk before it is bisected into halves.
BISECT_AFTER = 2

#: Failures of a single-unit chunk before it is retried in the parent
#: (and quarantined as poison if it dies even there).
POISON_AFTER = 3


@dataclass
class SupervisorStats:
    """Counters of every supervision action taken during one run.

    Attributes:
        worker_losses: Pool-breaking failures observed (all causes).
        deadline_losses: The subset detected by the parent-side chunk
            deadline (hung or silently stopped workers).
        rebuilds: Pools rebuilt after a loss.
        redispatched_units: Units of failed chunks sent out again.
        poison_units: Units quarantined after dying in the parent too.
        degraded_units: Units evaluated serially in the parent after
            the rebuild budget ran out.
    """

    worker_losses: int = 0
    deadline_losses: int = 0
    rebuilds: int = 0
    redispatched_units: int = 0
    poison_units: int = 0
    degraded_units: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for results and reports)."""
        return {
            "worker_losses": self.worker_losses,
            "deadline_losses": self.deadline_losses,
            "rebuilds": self.rebuilds,
            "redispatched_units": self.redispatched_units,
            "poison_units": self.poison_units,
            "degraded_units": self.degraded_units,
        }

    @property
    def any_activity(self) -> bool:
        """True when any supervision action fired (clean runs: False)."""
        return any(self.as_dict().values())


@dataclass
class _ChunkState:
    """One dispatchable chunk: its units, attempt count and salvage."""

    units: list[WorkUnit]
    attempts: int = 0
    #: Outcomes salvaged from a future that completed before a pool
    #: breakage elsewhere; served without re-evaluation.
    result: list[UnitOutcome] | None = None
    #: Marked when the chunk must be retried serially in the parent
    #: (single unit, repeatedly fatal in workers).
    serial: bool = False


class SupervisedUnitExecutor:
    """Pool executor that heals worker death instead of propagating it.

    A drop-in for :class:`~repro.perf.executor.ParallelUnitExecutor`
    (same inputs, same in-plan-order outcome stream) wrapped in the
    supervision state machine described in the module docstring.  The
    runner uses it by default for ``workers > 1``.

    Args:
        campaign: The (picklable) campaign supplying populations and
            the behaviour model.
        retry: Per-site retry policy forwarded to each worker.
        unit_deadline: Per-unit wall-clock budget.  Enforced on the
            worker's clock as before *and* scaled into a parent-side
            per-chunk deadline (``unit_deadline x chunk length x
            chunk_deadline_factor``) so hung workers are detected.
            ``None`` disables both.
        workers: Worker-process count (>= 1).
        chunksize: Units per pool task; automatic when omitted.
        max_pool_rebuilds: Pool rebuilds allowed before degrading to
            serial in-parent evaluation of the remaining units.
        chunk_deadline_factor: Slack multiplier of the parent-side
            chunk deadline (covers dispatch latency and worker
            oversubscription; > 0).
        bus: Optional :class:`~repro.obs.bus.EventBus` for ``pool.*``
            supervision events (``None`` = silent).
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`
            fed alongside the bus.
        sleep, clock: Injectable time sources for the *parent-side*
            fallback evaluator (workers use the real ones).
    """

    def __init__(self, campaign: Any, retry: RetryPolicy | None = None,
                 unit_deadline: float | None = None, workers: int = 2,
                 chunksize: int | None = None,
                 max_pool_rebuilds: int = 8,
                 chunk_deadline_factor: float = 4.0,
                 bus: Any = None, metrics: Any = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if chunk_deadline_factor <= 0:
            raise ValueError("chunk_deadline_factor must be positive")
        self.campaign = campaign
        self.retry = retry
        self.unit_deadline = unit_deadline
        self.workers = workers
        self.chunksize = chunksize
        self.max_pool_rebuilds = max_pool_rebuilds
        self.chunk_deadline_factor = chunk_deadline_factor
        self.bus = bus
        self.metrics = metrics
        self.sleep = sleep
        self.clock = clock
        self.stats = SupervisorStats()
        self._epoch = 0
        self._parent_evaluator: Any = None
        #: Per-unit pool-dispatch counts.  These -- not the per-chunk
        #: failure counts -- feed the chaos probes, because the pool
        #: can only blame the chunk it was *waiting on* for a breakage
        #: elsewhere; dispatch counts stay exact per unit regardless.
        self._dispatches: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Observability (parent-side; silent when no bus is attached)
    # ------------------------------------------------------------------
    def _emit(self, name: str, **data: Any) -> None:
        if self.bus is not None:
            self.bus.emit(name, **data)

    def _count(self, name: str, value: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, units: Sequence[WorkUnit]) -> Iterator[UnitOutcome]:
        """Yield one outcome per unit, in plan order, healing the pool.

        Args:
            units: Pending work units in plan order.

        Yields:
            :class:`~repro.runner.evaluate.UnitOutcome` per unit.

        Raises:
            WorkerInitError: the worker initializer failed (fatal:
                every worker fails identically, so no rebuild).
            BaseException: whatever unit evaluation itself raised
                (deadline overruns, injected behaviour-model crashes);
                supervision covers the *pool*, not the evaluation
                semantics.
        """
        if not units:
            return
        payload = pickle.dumps(
            (self.campaign, self.retry, self.unit_deadline))
        pending = [_ChunkState(list(chunk)) for chunk in
                   chunk_units(units, self.workers, self.chunksize)]
        while pending:
            # Serve leading chunks that need no pool: salvaged results
            # and serial (suspected-poison) retries.
            while pending and (pending[0].result is not None
                               or pending[0].serial):
                chunk = pending.pop(0)
                if chunk.result is not None:
                    yield from self._consume(chunk.result)
                else:
                    for unit in chunk.units:
                        yield self._parent_unit(unit)
            if not pending:
                return
            if self._epoch > 0:
                if self.stats.rebuilds >= self.max_pool_rebuilds:
                    yield from self._drain_serial(pending)
                    return
                self.stats.rebuilds += 1
                self._count("pool.rebuilds")
                self._emit("pool.rebuild", rebuilds=self.stats.rebuilds,
                           budget=self.max_pool_rebuilds)
            self._epoch += 1
            yield from self._pool_epoch(payload, pending)

    def _pool_epoch(self, payload: bytes,
                    pending: list[_ChunkState]) -> Iterator[UnitOutcome]:
        """One pool lifetime: dispatch, consume in order, stop on loss.

        Consumes (pops and yields) chunks from the front of
        ``pending``.  Returns normally either when every chunk is
        consumed or after a pool-breaking failure has been handled
        (chunk states updated for the next epoch); re-raises
        evaluation-level exceptions.
        """
        pool = ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=_pool_context(),
                                   initializer=_init_worker,
                                   initargs=(payload,))
        try:
            futures: dict[int, Any] = {}
            for chunk in pending:
                if chunk.result is not None:
                    continue
                attempts = [self._dispatches.get(u.unit_id, 0)
                            for u in chunk.units]
                futures[id(chunk)] = pool.submit(
                    _evaluate_chunk, chunk.units, attempts)
                for unit in chunk.units:
                    self._dispatches[unit.unit_id] = (
                        self._dispatches.get(unit.unit_id, 0) + 1)
            while pending:
                chunk = pending[0]
                if chunk.result is not None:
                    pending.pop(0)
                    yield from self._consume(chunk.result)
                    continue
                future = futures[id(chunk)]
                try:
                    outcomes = future.result(
                        timeout=self._chunk_timeout(chunk))
                except WorkerInitError:
                    raise
                except FutureTimeoutError:
                    self._handle_loss(chunk, pending, futures,
                                      cause="chunk-deadline")
                    return
                except BrokenProcessPool:
                    self._handle_loss(chunk, pending, futures,
                                      cause="worker-lost")
                    return
                pending.pop(0)
                yield from self._consume(outcomes)
        finally:
            self._teardown(pool)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _chunk_timeout(self, chunk: _ChunkState) -> float | None:
        """Parent-side deadline for one chunk (None = wait forever)."""
        if self.unit_deadline is None:
            return None
        return (self.unit_deadline * len(chunk.units)
                * self.chunk_deadline_factor)

    def _handle_loss(self, chunk: _ChunkState,
                     pending: list[_ChunkState],
                     futures: dict[int, Any], cause: str) -> None:
        """Account a pool-breaking failure of the head chunk.

        Emits ``pool.worker_lost``/``pool.redispatch``, salvages later
        chunks whose futures already completed, and escalates the
        failed chunk: redispatch -> bisect -> serial-in-parent.
        """
        chunk.attempts += 1
        self.stats.worker_losses += 1
        if cause == "chunk-deadline":
            self.stats.deadline_losses += 1
        self.stats.redispatched_units += len(chunk.units)
        self._count("pool.worker_losses")
        self._emit("pool.worker_lost", unit=chunk.units[0].unit_id,
                   units=len(chunk.units), cause=cause)
        self._emit("pool.redispatch", unit=chunk.units[0].unit_id,
                   units=len(chunk.units), attempt=chunk.attempts)
        # Salvage chunks that finished before the breakage: their
        # outcomes are already computed and must not be re-evaluated
        # (re-dispatching them would be wasted work, not a correctness
        # problem -- outcomes are pure functions of the unit).
        for other in pending[1:]:
            if other.result is not None:
                continue
            future = futures.get(id(other))
            if (future is not None and future.done()
                    and not future.cancelled()
                    and future.exception() is None):
                other.result = future.result()
        if len(chunk.units) == 1:
            if chunk.attempts >= POISON_AFTER:
                chunk.serial = True
        elif chunk.attempts >= BISECT_AFTER:
            mid = len(chunk.units) // 2
            pending[0:1] = [
                _ChunkState(chunk.units[:mid], attempts=chunk.attempts),
                _ChunkState(chunk.units[mid:], attempts=chunk.attempts),
            ]

    def _teardown(self, pool: ProcessPoolExecutor) -> None:
        """Shut a pool down without waiting on possibly-hung workers."""
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            if proc.is_alive():
                proc.terminate()
        for proc in processes:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Parent-side evaluation (poison retry and degraded-serial modes)
    # ------------------------------------------------------------------
    def _evaluator(self) -> Any:
        """The lazily-built in-parent fallback evaluator.

        Built through :func:`repro.perf.executor.make_evaluator`, so a
        campaign with its own ``unit_evaluator`` factory (the streaming
        experiment engine) gets the same evaluator in the parent as in
        the workers.
        """
        if self._parent_evaluator is None:
            self._parent_evaluator = make_evaluator(
                self.campaign, retry=self.retry,
                unit_deadline=self.unit_deadline,
                sleep=self.sleep, clock=self.clock)
        return self._parent_evaluator

    def _parent_unit(self, unit: WorkUnit) -> UnitOutcome:
        """Evaluate one unit in the parent, quarantining a fatal one.

        The last line of defence: a unit that reaches here has either
        repeatedly killed its workers (poison retry) or the rebuild
        budget is gone (degraded mode).  A crash here -- anything
        short of the interpreter-level exits and the runner's own
        deadline signal -- is recorded as a poison unit instead of
        propagating.
        """
        evaluator = self._evaluator()
        dispatches = self._dispatches.get(unit.unit_id, 0)
        try:
            probe_worker_faults(self.campaign, unit, dispatches,
                                in_worker=False)
            return evaluator.evaluate(unit)
        except (KeyboardInterrupt, SystemExit, UnitDeadlineExceeded):
            raise
        except BaseException as exc:  # noqa: BLE001 -- quarantined
            error = f"{type(exc).__name__}: {exc}"
            self.stats.poison_units += 1
            self._count("pool.poison_units")
            self._emit("pool.poison_unit", unit=unit.unit_id,
                       attempts=dispatches + 1, error=error)
            return self._poison_outcome(unit, dispatches + 1, error)

    def _poison_outcome(self, unit: WorkUnit, attempts: int,
                        error: str) -> UnitOutcome:
        """Synthesise the quarantine outcome of a poison unit.

        No site of the unit was (conclusively) evaluated, so the
        record claims nothing: ``detected == 0`` and ``errors ==
        total``.  The ledger carries one whole-unit entry with the
        sentinel ``site_index == -1`` (real site entries are >= 0),
        which is how reports and ``campaign status`` count poison
        units.  An evaluator that defines ``poison_outcome`` (the
        streaming engine's shard evaluator) synthesises its own.
        """
        evaluator = self._evaluator()
        poison = getattr(evaluator, "poison_outcome", None)
        if callable(poison):
            return poison(unit, attempts, error)
        total = len(evaluator.population(unit.kind))
        record = CoverageRecord(
            kind=unit.kind.value,
            resistance=unit.resistance,
            condition=unit.condition.name,
            vdd=unit.condition.vdd,
            period=unit.condition.period,
            detected=0,
            total=total,
            errors=total,
        )
        entry = {
            "unit_id": unit.unit_id,
            "site_index": -1,
            "defect": "<entire unit>",
            "attempts": attempts,
            "error": error,
            "deadline_hit": False,
        }
        return UnitOutcome(index=unit.index, unit_id=unit.unit_id,
                           record=record, quarantine=[entry],
                           stats=RetryStats())

    def _drain_serial(self,
                      pending: list[_ChunkState]) -> Iterator[UnitOutcome]:
        """Degraded mode: evaluate everything left in the parent."""
        remaining = sum(len(chunk.units) for chunk in pending
                        if chunk.result is None)
        self.stats.degraded_units += remaining
        self._count("pool.degraded_units", remaining)
        self._emit("pool.degrade_serial", units=remaining,
                   rebuilds=self.stats.rebuilds)
        while pending:
            chunk = pending.pop(0)
            if chunk.result is not None:
                yield from self._consume(chunk.result)
                continue
            for unit in chunk.units:
                yield self._parent_unit(unit)

    def _consume(self,
                 outcomes: Sequence[UnitOutcome]) -> Iterator[UnitOutcome]:
        """Yield worker outcomes, folding their chaos counters back."""
        for outcome in outcomes:
            merge_outcome_injections(self.campaign, outcome)
            yield outcome
