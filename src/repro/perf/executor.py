"""Process-pool work-unit executor: fan the sweep out across cores.

A coverage campaign is embarrassingly parallel: every (kind, R,
condition) work unit is independent of every other (the property
:mod:`repro.runner.units` establishes), so the only serial parts are
planning and checkpointing.  This module exploits that shape with a
:class:`concurrent.futures.ProcessPoolExecutor`:

* pending units are split into **contiguous chunks** in plan order --
  contiguity matters because consecutive units share a (kind, R)
  variant list, which each worker's
  :class:`~repro.runner.evaluate.UnitEvaluator` caches;
* each worker process rebuilds its evaluator once (pool initializer)
  from a pickled payload, then evaluates whole chunks per task, keeping
  IPC per unit negligible;
* the parent consumes chunk results **in submission order**, so
  downstream consumers (record list, quarantine ledger, checkpoint
  writes) observe exactly the serial plan order -- out-of-order
  *execution*, in-order *effects*;
* results are byte-identical to a serial run because unit evaluation is
  a pure function of the unit (see :mod:`repro.runner.evaluate`).

Failure semantics match the serial path: a retry-exhausted site is
quarantined inside the worker; an :class:`InjectedCrash`-style
``BaseException`` propagates to the caller, and the checkpointed
prefix makes the campaign resumable -- with or without workers.  A
*dying* worker (``BrokenProcessPool``) or a hung one is the one
failure the bare :class:`ParallelUnitExecutor` does not heal; the
supervised layer on top of it (:mod:`repro.perf.supervisor`, the
runner's default for ``workers > 1``) rebuilds the pool and
re-dispatches the not-yet-consumed units instead.  A worker whose
*initializer* failed (unpicklable payload, import error) surfaces as
:exc:`WorkerInitError` naming the underlying cause.

Observability (:mod:`repro.obs`) rides the same in-order effect point:
workers emit **no** events -- every journal entry is derived
parent-side from the :class:`~repro.runner.evaluate.UnitOutcome` as it
is consumed in plan order, which is why a 4-worker journal is
byte-identical to a serial one.
"""

from __future__ import annotations

import multiprocessing
import pickle
from collections.abc import Iterator, Sequence
from typing import Any

from repro.runner.evaluate import UnitEvaluator, UnitOutcome
from repro.runner.retry import RetryPolicy
from repro.runner.units import WorkUnit

#: Chunks-per-worker target used when no explicit chunk size is given:
#: enough chunks that a straggler cannot idle the pool, few enough that
#: per-chunk dispatch overhead stays negligible.
DEFAULT_CHUNKS_PER_WORKER = 4

_EVALUATOR: Any = None

#: Cause of a failed worker initialisation (worker-side; shipped to the
#: parent inside the :exc:`WorkerInitError` every task then raises).
_INIT_ERROR: str | None = None

#: True in pool worker processes (set by the initializer) -- tells the
#: chaos probe whether an injected worker death may really die.
_IN_WORKER = False


class WorkerInitError(RuntimeError):
    """The pool initializer failed; the message names the cause.

    Without this, a payload that cannot unpickle in the worker (or an
    initializer import error) made every task die with a bare
    ``AssertionError`` -- the actual exception was swallowed by the
    pool machinery.  The initializer instead records the cause and
    lets the worker live; the first task raises this error carrying
    it.  Not retryable: every worker of the pool fails identically,
    so the supervisor re-raises it instead of rebuilding.
    """


def make_evaluator(campaign: Any, retry: RetryPolicy | None = None,
                   unit_deadline: float | None = None,
                   **kwargs: Any) -> Any:
    """Build the unit evaluator for ``campaign`` (duck typed).

    A campaign that defines a callable ``unit_evaluator(...)`` factory
    supplies its own evaluator -- the streaming experiment engine
    (:mod:`repro.experiment.streaming`) ships a ``ShardEvaluator`` this
    way -- otherwise the stock
    :class:`~repro.runner.evaluate.UnitEvaluator` is built.  Either
    evaluator must expose ``campaign``, ``evaluate(unit)`` and (for
    supervised pools) optionally ``poison_outcome(unit, attempts,
    error)``.
    """
    factory = getattr(campaign, "unit_evaluator", None)
    if callable(factory):
        return factory(retry=retry, unit_deadline=unit_deadline, **kwargs)
    return UnitEvaluator(campaign, retry=retry, unit_deadline=unit_deadline,
                         **kwargs)


def _init_worker(payload: bytes) -> None:
    """Pool initializer: rebuild this process's evaluator once.

    Never raises: an exception here would kill the worker before any
    task could report *why*, leaving the parent with an opaque
    ``BrokenProcessPool``.  The cause is recorded instead and surfaced
    by :func:`_evaluate_chunk` as :exc:`WorkerInitError`.
    """
    global _EVALUATOR, _INIT_ERROR, _IN_WORKER
    _IN_WORKER = True
    try:
        campaign, retry, unit_deadline = pickle.loads(payload)
        _EVALUATOR = make_evaluator(campaign, retry=retry,
                                    unit_deadline=unit_deadline)
    except BaseException as exc:  # noqa: BLE001 -- reported, not lost
        _INIT_ERROR = f"{type(exc).__name__}: {exc}"


def probe_worker_faults(campaign: Any, unit: WorkUnit, attempt: int,
                        in_worker: bool) -> None:
    """Fire the worker-level chaos probe for one dispatched unit.

    A no-op unless the campaign's behaviour model is chaos-wrapped and
    its injector configures worker faults.  Probed by the worker just
    before evaluating (where an injected death really dies) and by the
    supervisor before an in-parent retry (where it raises instead).
    """
    injector = getattr(campaign.behavior, "injector", None)
    if injector is not None and hasattr(injector, "check_worker"):
        injector.check_worker(unit.unit_id, attempt, in_worker=in_worker)


def _evaluate_chunk(chunk: list[WorkUnit],
                    attempts: Sequence[int] | None = None,
                    ) -> list[UnitOutcome]:
    """Worker task: evaluate one contiguous chunk of work units.

    ``attempts`` carries each unit's 0-based dispatch count (the
    supervisor increments a unit's count on every pool submission); it
    only feeds the chaos probe, keeping injected worker deaths a pure
    function of (unit, attempt) across processes.
    """
    if _EVALUATOR is None:
        raise WorkerInitError(
            "worker initializer failed"
            + (f": {_INIT_ERROR}" if _INIT_ERROR else " (did not run)"))
    if attempts is None:
        attempts = [0] * len(chunk)
    outcomes = []
    for unit, attempt in zip(chunk, attempts):
        probe_worker_faults(_EVALUATOR.campaign, unit, attempt,
                            in_worker=_IN_WORKER)
        outcomes.append(_EVALUATOR.evaluate(unit))
    return outcomes


def merge_outcome_injections(campaign: Any, outcome: UnitOutcome) -> None:
    """Fold a worker outcome's injection counters into the parent.

    Worker processes mutate fork-copied :class:`~repro.runner.chaos.
    FaultInjector` counters that die with the worker; the outcome
    carries the per-unit delta back, and the parent-side executors
    call this at the in-order effect point so
    ``FaultInjector.stats()`` agrees between serial and pooled runs.
    """
    if not outcome.injections:
        return
    injector = getattr(campaign.behavior, "injector", None)
    if injector is not None and hasattr(injector, "merge_counts"):
        injector.merge_counts(outcome.injections)


def chunk_units(units: Sequence[WorkUnit], workers: int,
                chunksize: int | None = None) -> list[list[WorkUnit]]:
    """Split units into contiguous plan-order chunks.

    Args:
        units: Pending work units in plan order.
        workers: Worker-process count (sizes the automatic chunking).
        chunksize: Explicit units-per-chunk; computed from
            ``workers`` x :data:`DEFAULT_CHUNKS_PER_WORKER` when
            omitted.

    Returns:
        Non-empty contiguous chunks covering ``units`` in order.

    Raises:
        ValueError: non-positive ``chunksize`` or ``workers``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if chunksize is None:
        target = workers * DEFAULT_CHUNKS_PER_WORKER
        chunksize = max(1, -(-len(units) // target)) if units else 1
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    return [list(units[i:i + chunksize])
            for i in range(0, len(units), chunksize)]


def _pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context used for worker pools.

    Prefers ``fork`` where available (no re-import cost, inherits
    ``sys.path``); falls back to the platform default elsewhere.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelUnitExecutor:
    """Evaluate work units across a pool of worker processes.

    The executor is handed the same inputs a serial
    :class:`~repro.runner.evaluate.UnitEvaluator` would receive; it
    guarantees the same outcomes in the same (plan) order, just faster.

    Args:
        campaign: The campaign supplying populations and the behaviour
            model; must be picklable (the stock
            :class:`~repro.ifa.flow.IfaCampaign` and the chaos wrapper
            both are).
        retry: Per-site retry policy forwarded to each worker.
        unit_deadline: Per-unit wall-clock budget forwarded to each
            worker (measured on the worker's own monotonic clock).
        workers: Worker-process count (>= 1).
        chunksize: Units per pool task; automatic when omitted.
    """

    def __init__(self, campaign: Any, retry: RetryPolicy | None = None,
                 unit_deadline: float | None = None, workers: int = 2,
                 chunksize: int | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.campaign = campaign
        self.retry = retry
        self.unit_deadline = unit_deadline
        self.workers = workers
        self.chunksize = chunksize

    def run(self, units: Sequence[WorkUnit]) -> Iterator[UnitOutcome]:
        """Yield one outcome per unit, in plan order.

        Chunks execute concurrently across the pool; the parent blocks
        on them in submission order, so the yielded sequence -- and
        therefore every downstream effect, including checkpoint writes
        -- is identical to serial execution.

        Args:
            units: Pending work units in plan order.

        Yields:
            :class:`~repro.runner.evaluate.UnitOutcome` per unit.

        Raises:
            WorkerInitError: the worker initializer failed (the
                message names the underlying cause).
            BaseException: whatever a worker's evaluation raised
                (deadline overruns, injected crashes, pool breakage);
                the consumer's checkpointed prefix stays valid.
        """
        from concurrent.futures import ProcessPoolExecutor

        if not units:
            return
        payload = pickle.dumps(
            (self.campaign, self.retry, self.unit_deadline))
        chunks = chunk_units(units, self.workers, self.chunksize)
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=_pool_context(),
                                 initializer=_init_worker,
                                 initargs=(payload,)) as pool:
            futures = [pool.submit(_evaluate_chunk, chunk)
                       for chunk in chunks]
            for future in futures:
                for outcome in future.result():
                    merge_outcome_injections(self.campaign, outcome)
                    yield outcome
