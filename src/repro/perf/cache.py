"""Content-addressed evaluation cache: never simulate the same point twice.

The paper's deployment model ships a database of pre-calculated
simulation results precisely because one-defect-at-a-time analogue
simulation is too slow to run on demand (Section 3).  This module is
the library's incremental version of that idea: every completed
(population, behaviour model, R, condition) work unit is stored under a
content-addressed key, and any later sweep that evaluates the same
point -- an estimator refresh, an ablation benchmark, a resumed or
re-parameterised campaign -- gets the stored row back instead of
re-simulating.

Key design (see :mod:`repro.perf.fingerprint` and
``docs/performance.md``):

* the key is the SHA-256 digest of a canonical JSON document combining
  the behaviour-model fingerprint, the population fingerprint, the
  sweep resistance and the stress condition;
* *invalidation is implicit*: changing any calibration constant,
  geometry, seed or population size changes the key, so stale rows are
  simply never addressed again -- there is no flush protocol to get
  wrong;
* only **clean** units (``errors == 0``) are cached; a quarantined
  evaluation might succeed next time and must be allowed to.

On disk the cache reuses the runner's durable-artefact machinery
(:mod:`repro.runner.atomic`): atomic write-temp/fsync/rename plus a
versioned, SHA-256-checksummed envelope.  Because a cache is
*disposable* (every entry can be recomputed), corruption is handled
more leniently than for checkpoints: a corrupt cache file is discarded
and the campaign proceeds with an empty cache (the ``discarded_corrupt``
flag records that it happened), instead of refusing to run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.perf.fingerprint import fingerprint_document
from repro.runner.atomic import (
    EnvelopeError,
    FaultHook,
    atomic_write_envelope,
    canonical_json,
    temp_path_for,
    unwrap_envelope,
)

SCHEMA = "repro.evaluation-cache"
VERSION = 1

#: Schema tag mixed into every cache key so a key-layout change can
#: never collide with keys minted by an older layout.
KEY_SCHEMA = "repro.evaluation-cache-key/1"

#: Schema tag of frontier group-table keys (same collision rule).
FRONTIER_KEY_SCHEMA = "repro.frontier-table-key/1"


def unit_cache_key(behavior_doc: Any, population_doc: Any,
                   resistance: float, condition: Any) -> str:
    """Content-addressed key of one (model, population, R, condition).

    Args:
        behavior_doc: :func:`repro.perf.fingerprint.behavior_fingerprint`
            of the behaviour model.
        population_doc:
            :func:`repro.perf.fingerprint.population_fingerprint` of the
            site population being swept.
        resistance: Sweep-point resistance (ohms).
        condition: The :class:`~repro.stress.StressCondition` evaluated.

    Returns:
        A SHA-256 hex digest; equal inputs map to equal keys and any
        differing input yields a different key.
    """
    doc = {
        "schema": KEY_SCHEMA,
        "behavior": behavior_doc,
        "population": population_doc,
        "resistance": repr(float(resistance)),
        "condition": fingerprint_document(condition, "condition"),
    }
    return hashlib.sha256(
        canonical_json(doc).encode("utf-8")).hexdigest()


def frontier_cache_key(behavior_doc: Any, population_doc: Any,
                       resistances: Any, condition: Any) -> str:
    """Content-addressed key of one frontier group table.

    Keys the *derived detection rows* of a whole (kind, condition)
    sweep group (:mod:`repro.perf.frontier`) rather than one unit's
    record, so a repeated frontier campaign skips even the threshold
    pass.  The full resistance grid is part of the key: tables derived
    for different grids are different artefacts even when model and
    population coincide.  Unit payloads and group tables share one
    cache file; their schema tags keep the key spaces disjoint.

    Args:
        behavior_doc: :func:`repro.perf.fingerprint.behavior_fingerprint`
            of the behaviour model.
        population_doc:
            :func:`repro.perf.fingerprint.population_fingerprint` of the
            site population being swept.
        resistances: The group's full resistance grid (ascending).
        condition: The :class:`~repro.stress.StressCondition` of the
            group.

    Returns:
        A SHA-256 hex digest with the same equal-inputs/equal-keys
        contract as :func:`unit_cache_key`.
    """
    doc = {
        "schema": FRONTIER_KEY_SCHEMA,
        "behavior": behavior_doc,
        "population": population_doc,
        "resistances": [repr(float(r)) for r in resistances],
        "condition": fingerprint_document(condition, "condition"),
    }
    return hashlib.sha256(
        canonical_json(doc).encode("utf-8")).hexdigest()


class EvaluationCache:
    """In-memory image of the on-disk evaluation cache.

    The cache maps content-addressed keys (:func:`unit_cache_key`) to
    :class:`~repro.ifa.flow.CoverageRecord` payload dicts.  Hit/miss
    counters accumulate over the instance's lifetime and feed the
    benchmark harness's hit-rate figures.

    Attributes:
        entries: Key -> record-payload mapping.
        hits: Number of :meth:`get` calls that found an entry.
        misses: Number of :meth:`get` calls that did not.
        discarded_corrupt: True when :meth:`load` found a cache file it
            could not validate and discarded it (whether it then fell
            back to the ``.tmp`` sibling or started empty).
        corrupt_detail: One ``{"path", "error"}`` entry per discarded
            candidate file, naming the exception that rejected it --
            the forensic record behind ``discarded_corrupt`` (surfaced
            as ``cache.discard_corrupt`` journal events and in
            ``repro campaign status --cache``).
        recovered_from_temp: True when :meth:`load` fell back to the
            ``.tmp`` sibling (crash between fsync and rename).
    """

    def __init__(self) -> None:
        self.entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.discarded_corrupt = False
        self.corrupt_detail: list[dict[str, str]] = []
        self.recovered_from_temp = False
        self._dirty = False

    # ------------------------------------------------------------------
    # Lookup / insertion
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """Return the payload stored under ``key``, counting hit/miss."""
        payload = self.entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return dict(payload)

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store a record payload under ``key`` (marks the cache dirty)."""
        self.entries[key] = dict(payload)
        self._dirty = True

    def __len__(self) -> int:
        """Number of cached entries."""
        return len(self.entries)

    @property
    def dirty(self) -> bool:
        """True when entries were added since the last load/save."""
        return self._dirty

    def stats(self) -> dict[str, Any]:
        """Hit/miss counters plus the derived hit rate.

        Returns:
            A dict with ``entries``, ``hits``, ``misses``, ``hit_rate``
            (0.0 when the cache was never queried),
            ``discarded_corrupt`` and ``corrupt_detail``.
        """
        queries = self.hits + self.misses
        return {
            "entries": len(self.entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / queries if queries else 0.0,
            "discarded_corrupt": self.discarded_corrupt,
            "corrupt_detail": [dict(d) for d in self.corrupt_detail],
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path,
             fault_hook: FaultHook | None = None) -> None:
        """Durably write the cache (atomic replace + checksum envelope).

        Args:
            path: Destination cache file.
            fault_hook: Optional chaos probe threaded into the atomic
                write (see :mod:`repro.runner.chaos`).
        """
        atomic_write_envelope(path, SCHEMA, VERSION,
                              {"entries": self.entries},
                              fault_hook=fault_hook)
        self._dirty = False

    @classmethod
    def _parse(cls, text: str) -> "EvaluationCache":
        """Parse one candidate cache file body, raising on any defect."""
        payload = json.loads(text)
        _, body = unwrap_envelope(payload, SCHEMA, VERSION)
        entries = body.get("entries")
        if not isinstance(entries, dict):
            raise EnvelopeError("cache body has no 'entries' mapping")
        cache = cls()
        cache.entries = {str(k): dict(v) for k, v in entries.items()}
        return cache

    @classmethod
    def load(cls, path: str | Path) -> "EvaluationCache":
        """Load a cache file, degrading gracefully on every failure.

        Resolution order: the destination file if it validates; else the
        ``.tmp`` sibling (crash between fsync and rename); else an empty
        cache.  A corrupt-but-present file sets ``discarded_corrupt``
        -- with the exception recorded in ``corrupt_detail`` -- instead
        of raising: every cache entry is recomputable, so a bad cache
        must never stop a campaign, but the discard must not be silent
        either.

        Args:
            path: Cache file location (may not exist yet).

        Returns:
            The loaded (possibly empty) cache.
        """
        path = Path(path)
        detail: list[dict[str, str]] = []
        for candidate in (path, temp_path_for(path)):
            if not candidate.exists():
                continue
            try:
                cache = cls._parse(candidate.read_text())
            except (json.JSONDecodeError, EnvelopeError, OSError) as exc:
                detail.append({
                    "path": str(candidate),
                    "error": f"{type(exc).__name__}: {exc}",
                })
                continue
            cache.recovered_from_temp = candidate != path
            cache.discarded_corrupt = bool(detail)
            cache.corrupt_detail = detail
            return cache
        cache = cls()
        cache.discarded_corrupt = bool(detail)
        cache.corrupt_detail = detail
        return cache
