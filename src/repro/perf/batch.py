"""Vectorised batch evaluation: one numpy call per sweep group.

The frontier solver (:mod:`repro.perf.frontier`) already cut the
Table-1 sweep's model invocations 20-fold, but its per-unit Python loop
over every site kept the wall-clock win at barely 1.1x.  This module
removes that loop.  Per (kind, condition) group the behaviour model's
optional :meth:`~repro.defects.behavior.DefectBehaviorModel.
evaluate_batch` hook answers the full site x R grid in **one**
vectorised call; per-resistance detection counts are then precomputed
column sums, so evaluating a work unit costs O(1) Python work instead
of O(sites).

**Exactness is guarded, not assumed** -- the same three-layer defence
as the frontier solver:

1. the hook's closed forms replicate the scalar float arithmetic
   operation-for-operation (same operand grouping, same comparisons,
   transcendentals through the identical :mod:`math` calls), so its
   answers are bit-identical by construction;
2. a seeded cross-check sample of (site, R) cells is re-evaluated
   through ``fails_condition``; any site whose batch row disagrees is
   demoted to per-unit exact evaluation (ledger reason
   ``lying-model``);
3. a model without the hook -- or whose hook raises or returns the
   wrong shape -- silently falls back to the scalar path for the whole
   group, reproducing the exact path's records, retries and
   quarantine semantics byte-for-byte.

Exact-path equivalence: tests/perf/test_batch.py

Derived group tables are content-addressed into the evaluation cache
under the *same* key as frontier tables
(:func:`repro.perf.cache.frontier_cache_key`): both artefacts are the
group's detection rows, so a table derived by either strategy serves
the other.

Chaos note: :class:`~repro.runner.chaos.ChaosBehaviorModel` explicitly
declines the hook (``evaluate_batch = None``), so chaos campaigns take
the all-scalar fallback and probe the injector site-for-site exactly
like ``strategy="exact"`` -- same fault pattern, same retry/quarantine
ledger, same records (asserted in the equivalence tests).
"""

from __future__ import annotations

import math
import random
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.defects.models import Defect, DefectKind
from repro.ifa.flow import CoverageRecord
from repro.perf.frontier import TABLE_SCHEMA, FrontierPolicy
from repro.runner.evaluate import UnitOutcome
from repro.runner.retry import (
    DEFAULT_UNIT_POLICY,
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
    run_with_retry,
)
from repro.runner.units import WorkUnit

__all__ = [
    "BatchEvaluator",
    "BatchStats",
]


@dataclass
class BatchStats:
    """Counters describing one batch evaluator's work.

    Attributes:
        groups: (kind, condition) groups whose table was derived.
        cached_groups: Groups served from the evaluation cache.
        sites: Site decisions made across all derived groups.
        batch_sites: Sites answered by the model's ``evaluate_batch``
            hook (zero scalar model invocations).
        fallback_sites: Sites routed to per-unit scalar evaluation
            because the hook was absent, ``None``, raised or returned
            a wrong-shape result.  Whole-group events: every site of
            the group falls back together.
        demoted_sites: Batch-answered sites demoted to scalar
            evaluation by a failed cross-check.
        model_invocations: Total ``fails_condition`` calls issued by
            this evaluator (cross-check + scalar fallback).
        crosscheck_invocations: Subset of ``model_invocations`` spent
            on the consistency guard.
        crosscheck_mismatches: Cross-checked cells that disagreed with
            the batch row (each demotes its site).
        demotions: Forensic ledger of every fast-path rejection: one
            ``{"kind", "condition", "site_index", "reason", "stage",
            "error"}`` entry per event.  ``reason`` is ``lying-model``
            (cross-check disagreed), ``probe-error`` (the hook or a
            check raised) or ``bad-shape`` (the hook returned the
            wrong array shape); group-level entries use
            ``site_index=-1``.  Hook-level entries do not bump
            ``demoted_sites`` -- a group the hook could not answer was
            never on the fast path.
        group_log: One ``{"kind", "condition", "sites", "cached"}``
            entry per group table built or served from cache, in build
            order.
    """

    groups: int = 0
    cached_groups: int = 0
    sites: int = 0
    batch_sites: int = 0
    fallback_sites: int = 0
    demoted_sites: int = 0
    model_invocations: int = 0
    crosscheck_invocations: int = 0
    crosscheck_mismatches: int = 0
    demotions: list[dict[str, Any]] = field(default_factory=list)
    group_log: list[dict[str, Any]] = field(default_factory=list)

    def record_demotion(self, kind: DefectKind, condition: Any,
                        site_index: int, reason: str, stage: str,
                        error: str | None = None) -> None:
        """Append one demotion-ledger entry (never drops the cause)."""
        self.demotions.append({
            "kind": kind.value,
            "condition": condition.name,
            "site_index": site_index,
            "reason": reason,
            "stage": stage,
            "error": error,
        })

    def as_dict(self) -> dict[str, Any]:
        """Counters plus ledgers as a plain JSON-serialisable dict."""
        return {
            "groups": self.groups,
            "cached_groups": self.cached_groups,
            "sites": self.sites,
            "batch_sites": self.batch_sites,
            "fallback_sites": self.fallback_sites,
            "demoted_sites": self.demoted_sites,
            "model_invocations": self.model_invocations,
            "crosscheck_invocations": self.crosscheck_invocations,
            "crosscheck_mismatches": self.crosscheck_mismatches,
            "demotions": [dict(d) for d in self.demotions],
            "group_log": [dict(g) for g in self.group_log],
        }


@dataclass
class _BatchTable:
    """Derived detection rows plus precomputed per-column sums.

    Attributes:
        grid: Ascending unique resistance grid of the group.
        index_of: Resistance -> grid index (plan resistances are reused
            verbatim, so float equality is exact).
        decisions: Per site: a detection row aligned with ``grid``
            (a plain list from the cache or a numpy row fresh from the
            hook -- indexing behaves identically), or ``None`` when
            the site must be evaluated exactly per unit.
        detected_counts: Per grid index: how many decided sites detect
            at that resistance -- the O(1) core of unit evaluation.
        fallback: Site indices whose row is ``None``, in site order.
    """

    grid: list[float]
    index_of: dict[float, int]
    decisions: list[Any]
    detected_counts: list[int]
    fallback: list[int]


class BatchEvaluator:
    """Drop-in :class:`~repro.runner.evaluate.UnitEvaluator` answering
    whole sweep groups through the model's batch hook.

    Presents the same ``evaluate(unit) -> UnitOutcome`` interface and
    emits identical :class:`~repro.ifa.flow.CoverageRecord` payloads;
    the difference is that a unit whose group table is derived costs
    O(1) Python work plus O(fallback sites) scalar calls.  Group
    tables are built lazily on the first unit of each (kind,
    condition) group; retry counters spent on a group's cross-check
    are folded into that triggering unit's outcome so campaign-wide
    tallies stay complete.

    Args:
        campaign: The :class:`~repro.ifa.flow.IfaCampaign`-shaped
            object supplying site populations and the behaviour model.
        plan: The **full** unit plan (not only pending units) -- the
            group resistance grids must be derived from the complete
            sweep so cached tables are content-addressed identically
            regardless of checkpoint/cache state.
        retry: Per-site retry policy (shared with the exact path).
        policy: Cross-check knobs, shared with the frontier solver
            (:class:`~repro.perf.frontier.FrontierPolicy`).
        cache: Optional :class:`~repro.perf.cache.EvaluationCache`;
            derived group tables are stored/served under
            :func:`~repro.perf.cache.frontier_cache_key` -- the same
            key space as frontier tables, which hold identical
            decision rows for identical inputs.
        unit_deadline: Optional wall-clock budget (seconds) for one
            unit's scalar-fallback loop.  Group-table derivation is
            excluded: it amortises over the whole group, so charging
            it to the triggering unit would trip the budget
            spuriously.
        sleep: Injectable sleep for the retry machinery.
        clock: Injectable monotonic clock for deadlines.
    """

    def __init__(self, campaign: Any, plan: Sequence[WorkUnit],
                 retry: RetryPolicy | None = None,
                 policy: FrontierPolicy | None = None,
                 cache: Any = None,
                 unit_deadline: float | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if unit_deadline is not None and unit_deadline <= 0:
            raise ValueError("unit_deadline must be positive")
        self.campaign = campaign
        self.retry = retry if retry is not None else DEFAULT_UNIT_POLICY
        self.policy = policy if policy is not None else FrontierPolicy()
        self.cache = cache
        self.unit_deadline = unit_deadline
        self.sleep = sleep
        self.clock = clock
        self.stats = BatchStats()
        self._populations: dict[DefectKind, list[Defect]] = {}
        self._grids: dict[tuple[DefectKind, Any], list[float]] = {}
        for unit in plan:
            key = (unit.kind, unit.condition)
            grid = self._grids.setdefault(key, [])
            if unit.resistance not in grid:
                grid.append(unit.resistance)
        for grid in self._grids.values():
            grid.sort()
        self._groups: dict[tuple[DefectKind, Any], _BatchTable] = {}
        self._pending_group_stats = RetryStats()

    # ------------------------------------------------------------------
    # Population / model access
    # ------------------------------------------------------------------
    def population(self, kind: DefectKind) -> list[Defect]:
        """The campaign's (cached) site population for one defect kind."""
        if kind not in self._populations:
            self._populations[kind] = (
                self.campaign.bridge_population()
                if kind is DefectKind.BRIDGE
                else self.campaign.open_population())
        return self._populations[kind]

    def _call_model(self, defect: Defect, condition: Any, key: str,
                    stats: RetryStats) -> bool:
        """One retry-wrapped, counted ``fails_condition`` call."""
        behavior = self.campaign.behavior
        self.stats.model_invocations += 1
        return run_with_retry(
            lambda: behavior.fails_condition(defect, condition),
            self.retry, key, sleep=self.sleep, clock=self.clock,
            stats=stats)

    # ------------------------------------------------------------------
    # Group tables
    # ------------------------------------------------------------------
    def _table_cache_key(self, kind: DefectKind, condition: Any,
                         grid: Sequence[float]) -> str | None:
        """Content-addressed cache key of one group table (or None)."""
        if self.cache is None:
            return None
        from repro.perf.cache import frontier_cache_key
        from repro.perf.fingerprint import (
            FingerprintError,
            behavior_fingerprint,
            population_fingerprint,
        )

        try:
            return frontier_cache_key(
                behavior_fingerprint(self.campaign.behavior),
                population_fingerprint(self.campaign, kind),
                grid, condition)
        except FingerprintError:
            return None

    def _cached_table(self, key: str | None, n_sites: int,
                      n_grid: int) -> list[list[bool] | None] | None:
        """Validated decision rows from the cache, or ``None``."""
        if key is None:
            return None
        payload = self.cache.get(key)
        if payload is None or payload.get("schema") != TABLE_SCHEMA:
            return None
        rows = payload.get("decisions")
        if not isinstance(rows, list) or len(rows) != n_sites:
            return None
        decisions: list[list[bool] | None] = []
        for row in rows:
            if row is None:
                decisions.append(None)
            elif isinstance(row, list) and len(row) == n_grid:
                decisions.append([bool(v) for v in row])
            else:
                return None
        return decisions

    def _assemble(self, grid: list[float], index_of: dict[float, int],
                  decisions: list[Any]) -> _BatchTable:
        """Precompute the per-column detection sums and fallback list."""
        fallback = [i for i, row in enumerate(decisions) if row is None]
        decided = [row for row in decisions if row is not None]
        if decided:
            detected_counts = [int(c) for c in np.asarray(
                decided, dtype=bool).sum(axis=0)]
        else:
            detected_counts = [0] * len(grid)
        return _BatchTable(grid, index_of, decisions, detected_counts,
                           fallback)

    def _group(self, kind: DefectKind, condition: Any) -> _BatchTable:
        """The (lazily built) group table for one (kind, condition)."""
        gkey = (kind, condition)
        table = self._groups.get(gkey)
        if table is not None:
            return table
        grid = self._grids.get(gkey, [])
        population = self.population(kind)
        index_of = {r: j for j, r in enumerate(grid)}
        cache_key = self._table_cache_key(kind, condition, grid)
        cached = self._cached_table(cache_key, len(population), len(grid))
        if cached is not None:
            self.stats.cached_groups += 1
            self.stats.group_log.append({
                "kind": kind.value,
                "condition": condition.name,
                "sites": len(population),
                "cached": True,
            })
            table = self._assemble(grid, index_of, cached)
            self._groups[gkey] = table
            return table
        decisions = self._derive_group(kind, condition, grid, population)
        self.stats.groups += 1
        self.stats.sites += len(population)
        self.stats.group_log.append({
            "kind": kind.value,
            "condition": condition.name,
            "sites": len(population),
            "cached": False,
        })
        if cache_key is not None:
            # Live rows may be numpy views; the cached artefact is the
            # same plain-list payload frontier tables use, so both
            # strategies serve each other's tables.
            self.cache.put(cache_key, {
                "schema": TABLE_SCHEMA,
                "decisions": [
                    None if row is None
                    else [bool(v) for v in row]
                    for row in decisions],
            })
        table = self._assemble(grid, index_of, decisions)
        self._groups[gkey] = table
        return table

    def _derive_group(self, kind: DefectKind, condition: Any,
                      grid: list[float], population: Sequence[Defect],
                      ) -> list[Any]:
        """One batch-hook call for the group, cross-checked.

        The hook is a capability probe, never an obligation: absent or
        ``None`` routes the whole group to the scalar path silently; a
        raising hook or a wrong-shape result does the same but leaves
        a demotion-ledger entry naming the cause.
        """
        behavior = self.campaign.behavior
        n = len(population)
        hook = getattr(behavior, "evaluate_batch", None)
        if hook is None:
            self.stats.fallback_sites += n
            return [None] * n
        try:
            matrix = np.asarray(hook(population, list(grid), condition),
                                dtype=bool)
        except Exception as exc:
            self.stats.record_demotion(
                kind, condition, -1, "probe-error", "batch",
                error=f"evaluate_batch: {type(exc).__name__}: {exc}")
            self.stats.fallback_sites += n
            return [None] * n
        if matrix.shape != (n, len(grid)):
            self.stats.record_demotion(
                kind, condition, -1, "bad-shape", "batch",
                error=f"evaluate_batch returned shape {matrix.shape}, "
                      f"expected {(n, len(grid))}")
            self.stats.fallback_sites += n
            return [None] * n
        # Rows stay numpy views here; they convert to plain lists only
        # at cache-put time.  Row indexing and truthiness behave
        # identically, and skipping the conversion keeps the per-sweep
        # Python work O(demoted + fallback), not O(cells).
        decisions: list[Any] = list(matrix)
        self.stats.batch_sites += n
        self._crosscheck(kind, condition, grid, population, decisions)
        return decisions

    def _crosscheck(self, kind: DefectKind, condition: Any,
                    grid: Sequence[float], population: Sequence[Defect],
                    decisions: list[Any]) -> None:
        """Re-evaluate a seeded cell sample exactly; demote liars.

        Mutates ``decisions`` in place: any site whose batch row
        disagrees with an exact evaluation -- or whose check exhausts
        its retries -- is set to ``None`` (exact per-unit fallback).
        The sample is drawn with the same seed derivation as the
        frontier solver's, so identical policies check identical
        cells.
        """
        fraction = self.policy.batch_crosscheck_fraction
        if fraction <= 0.0 or not grid:
            return
        decided = [i for i, row in enumerate(decisions) if row is not None]
        total = len(decided) * len(grid)
        if total == 0:
            return
        samples = min(total, max(1, math.ceil(fraction * total)))
        rng = random.Random(f"{self.policy.crosscheck_seed}:"
                            f"{kind.value}:{condition.name}:{len(grid)}")
        for cell in rng.sample(range(total), samples):
            ordinal, j = divmod(cell, len(grid))
            site_index = decided[ordinal]
            row = decisions[site_index]
            if row is None:
                continue  # already demoted by an earlier sample
            defect = population[site_index].with_resistance(grid[j])
            self.stats.crosscheck_invocations += 1
            try:
                exact = self._call_model(
                    defect, condition,
                    f"batch-check:{kind.value}:{condition.name}"
                    f"#site{site_index}@{grid[j]!r}",
                    self._pending_group_stats)
            except RetryExhaustedError as exc:
                decisions[site_index] = None
                self.stats.demoted_sites += 1
                self.stats.record_demotion(
                    kind, condition, site_index, "probe-error",
                    "crosscheck", error=f"{type(exc).__name__}: {exc}")
                continue
            if exact != row[j]:
                decisions[site_index] = None
                self.stats.crosscheck_mismatches += 1
                self.stats.demoted_sites += 1
                self.stats.record_demotion(
                    kind, condition, site_index, "lying-model",
                    "crosscheck",
                    error=f"batch row says {row[j]}, exact says "
                          f"{exact} at R={grid[j]!r}")

    # ------------------------------------------------------------------
    # Unit evaluation
    # ------------------------------------------------------------------
    def evaluate(self, unit: WorkUnit) -> UnitOutcome:
        """Evaluate one unit from its group table (exact where demoted).

        Decided sites are answered by the precomputed per-column sum;
        fallback sites run the scalar path with the exact evaluator's
        site keys, injector bookkeeping and quarantine semantics, so a
        whole-group fallback reproduces ``strategy="exact"``
        byte-for-byte -- retry jitter, chaos probes, ledger and all.

        Args:
            unit: The (kind, R, condition) cell to evaluate.

        Returns:
            A :class:`~repro.runner.evaluate.UnitOutcome` whose record
            is byte-identical to the exact path's.

        Raises:
            UnitDeadlineExceeded: the scalar-fallback loop overran
                ``unit_deadline``.
        """
        from repro.runner.evaluate import UnitDeadlineExceeded

        table = self._group(unit.kind, unit.condition)
        j = table.index_of.get(unit.resistance)
        population = self.population(unit.kind)
        cond = unit.condition
        behavior = self.campaign.behavior
        # Chaos bookkeeping, identical to UnitEvaluator's: scope the
        # injector to the unit and snapshot its counters so outcomes
        # carry per-unit injection deltas.
        injector = getattr(behavior, "injector", None)
        if injector is not None and hasattr(injector, "begin_unit"):
            injector.begin_unit(unit.unit_id)
        snapshot = (injector.counter_snapshot()
                    if injector is not None
                    and hasattr(injector, "counter_snapshot") else None)
        stats = RetryStats()
        # Attribute retry counters spent cross-checking the group to
        # the unit that triggered the build, so tallies stay complete.
        stats.merge(self._pending_group_stats)
        self._pending_group_stats = RetryStats()
        started = self.clock()
        if j is not None:
            detected = table.detected_counts[j]
            fallback: Sequence[int] = table.fallback
        else:
            detected = 0
            fallback = range(len(population))
        entries: list[dict[str, Any]] = []
        for position, site_index in enumerate(fallback):
            defect = population[site_index].with_resistance(
                unit.resistance)
            site_key = f"{unit.unit_id}#site{site_index}"
            try:
                if self._call_model(defect, cond, site_key, stats):
                    detected += 1
            except RetryExhaustedError as exc:
                entries.append({
                    "unit_id": unit.unit_id,
                    "site_index": site_index,
                    "defect": str(defect),
                    "attempts": exc.attempts,
                    "error": f"{type(exc.causes[-1]).__name__}: "
                             f"{exc.causes[-1]}",
                    "deadline_hit": exc.deadline_hit,
                })
            if (self.unit_deadline is not None
                    and self.clock() - started > self.unit_deadline):
                raise UnitDeadlineExceeded(
                    f"{unit} exceeded its {self.unit_deadline:g}s budget "
                    f"after {position + 1}/{len(fallback)} fallback "
                    "sites; completed units are checkpointed -- fix the "
                    "stall and resume")
        record = CoverageRecord(
            kind=unit.kind.value,
            resistance=unit.resistance,
            condition=cond.name,
            vdd=cond.vdd,
            period=cond.period,
            detected=detected,
            total=len(population),
            errors=len(entries),
        )
        injections = (injector.counters_since(snapshot)
                      if snapshot is not None else {})
        return UnitOutcome(index=unit.index, unit_id=unit.unit_id,
                           record=record, quarantine=entries, stats=stats,
                           injections=injections)
