"""Frontier benchmark: invocation reduction measured, not asserted.

Produces the ``BENCH_frontier.json`` artefact documented in
``docs/performance.md``.  Two comparisons, both verified byte-identical
on every run before any number is reported:

* **campaign** -- the paper's Table-1 bridge sweep (4 resistances x
  the 5 production stress conditions) evaluated ``strategy="exact"``
  vs ``strategy="frontier"`` (:mod:`repro.perf.frontier`) vs
  ``strategy="batch"`` (:mod:`repro.perf.batch`), with the behaviour
  model wrapped in a
  :class:`~repro.perf.counting.CountingBehaviorModel` so the headline
  figure is a deterministic call count, not a timing;
* **shmoo** -- a paper-sized (Vdd, period) grid (Figures 3/4: 15
  voltages x 24 periods) filled ``strategy="exact"`` vs
  ``strategy="boundary"`` by :class:`~repro.tester.shmoo.ShmooRunner`,
  counting tester invocations.

The validator (:func:`validate_frontier_bench`) enforces the floors the
fast paths exist for -- at least 5x fewer behaviour-model invocations
on the Table-1 campaign, at least 3x fewer tester invocations on the
shmoo, and at least a 5x wall-clock speedup for the vectorised batch
strategy over exact (the one timing floor: the batch kernel exists to
kill the per-site Python loop, which call counts alone cannot see) --
so a regression that erodes the reduction fails the artefact's schema
check, not just a benchmark eyeball.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Any

import numpy as np

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import BridgeSite, Defect, DefectKind
from repro.ifa.flow import TABLE1_RESISTANCES, IfaCampaign
from repro.march.library import get_test
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram
from repro.perf.counting import CountingBehaviorModel
from repro.runner.campaign import CampaignRunner, SweepSpec
from repro.stress import production_conditions
from repro.tester.ate import VirtualTester
from repro.tester.shmoo import (
    ShmooRunner,
    default_period_axis,
    default_voltage_axis,
)

#: Schema tag of the emitted BENCH_frontier.json document.
FRONTIER_BENCH_SCHEMA = "repro.bench-frontier/2"

#: Acceptance floors enforced by the validator.
MIN_CAMPAIGN_REDUCTION = 5.0
MIN_SHMOO_REDUCTION = 3.0
MIN_BATCH_WALLCLOCK = 5.0


@dataclass(frozen=True)
class FrontierBenchConfig:
    """Shape of the frontier benchmark.

    Attributes:
        rows, columns, bits: Memory geometry of the campaign half.
        sites: Site-population size of the Table-1 sweep.
        seed: Campaign seed.
        shmoo_defect_resistance: Resistance of the Chip-1-style bridge
            whose shmoo is traced (the paper's Figure 4 device).
    """

    rows: int = 32
    columns: int = 4
    bits: int = 8
    sites: int = 2000
    seed: int = 2005
    shmoo_defect_resistance: float = 240e3

    @classmethod
    def quick(cls) -> "FrontierBenchConfig":
        """A seconds-scale configuration for CI smoke runs.

        Only the geometry and site population shrink; the shmoo grid
        stays paper-sized so the invocation-reduction floors still
        hold (the reductions are structural, not
        population-dependent).  The population cannot shrink
        arbitrarily, though: the batch kernel's fixed per-group numpy
        dispatch cost is population-independent, so a tiny population
        under-reports its wall-clock speedup and would trip the
        validator floor spuriously.
        """
        return cls(rows=16, columns=2, bits=4, sites=400)


def _campaign_specs() -> list[SweepSpec]:
    """The paper's Table-1 sweep: 4 bridge resistances x 5 conditions."""
    conds = tuple(production_conditions(CMOS018).values())
    return [SweepSpec.of(DefectKind.BRIDGE, TABLE1_RESISTANCES, conds)]


def _counted_campaign(config: FrontierBenchConfig) -> IfaCampaign:
    """A fresh campaign whose behaviour model counts its calls."""
    geometry = MemoryGeometry(config.rows, config.columns, config.bits)
    campaign = IfaCampaign(geometry, CMOS018, n_sites=config.sites,
                           seed=config.seed)
    campaign.behavior = CountingBehaviorModel(campaign.behavior)
    return campaign


def _records_blob(records: list[Any]) -> str:
    """Canonical byte-comparison form of a record list."""
    return json.dumps([asdict(r) for r in records], sort_keys=True)


def _bench_campaign(config: FrontierBenchConfig) -> dict[str, Any]:
    """Time + count the Table-1 sweep exact vs frontier vs batch.

    The site population is sampled *before* the clock starts: all
    three strategies share the identical critical-area extraction, and
    on short configurations it would otherwise dominate every row and
    flatten the very evaluation-cost differences the benchmark exists
    to measure (the pre-PR-8 artefact reported a 1.1x "speedup" for a
    20x invocation reduction for exactly this reason).
    """
    specs = _campaign_specs()
    rows: dict[str, Any] = {}
    results: dict[str, str] = {}
    for strategy in ("exact", "frontier", "batch"):
        campaign = _counted_campaign(config)
        campaign.bridge_population()  # warm extraction outside the clock
        runner = CampaignRunner(campaign, strategy=strategy)
        started = time.perf_counter()
        result = runner.run(specs)
        seconds = time.perf_counter() - started
        rows[strategy] = {
            "model_invocations": campaign.behavior.calls,
            "seconds": round(seconds, 6),
            "units": len(result.records),
        }
        results[strategy] = _records_blob(result.records)
        if result.frontier_stats is not None:
            rows[strategy]["stats"] = result.frontier_stats
        if result.batch_stats is not None:
            rows[strategy]["stats"] = result.batch_stats
        if strategy != "exact" and results[strategy] != results["exact"]:
            raise RuntimeError(
                f"{strategy} records diverged from exact -- the "
                "equivalence contract is broken")
    exact_calls = rows["exact"]["model_invocations"]
    frontier_calls = max(1, rows["frontier"]["model_invocations"])
    rows["invocation_reduction"] = round(exact_calls / frontier_calls, 2)
    rows["invocation_reduction_batch"] = round(
        exact_calls / max(1, rows["batch"]["model_invocations"]), 2)
    rows["speedup"] = (
        round(rows["exact"]["seconds"] / rows["frontier"]["seconds"], 3)
        if rows["frontier"]["seconds"] else None)
    rows["speedup_batch"] = (
        round(rows["exact"]["seconds"] / rows["batch"]["seconds"], 3)
        if rows["batch"]["seconds"] else None)
    rows["records_match"] = True
    return rows


def _bench_shmoo(config: FrontierBenchConfig) -> dict[str, Any]:
    """Time + count a paper-sized shmoo exact vs boundary-traced."""
    sram = Sram(MemoryGeometry(8, 2, 4), CMOS018)
    defects = [Defect(DefectKind.BRIDGE, BridgeSite.CELL_NODE_RAIL,
                      config.shmoo_defect_resistance, polarity=1, cell=13)]
    voltages = default_voltage_axis()
    periods = default_period_axis()
    rows: dict[str, Any] = {}
    grids: dict[str, Any] = {}
    for strategy in ("exact", "boundary"):
        runner = ShmooRunner(VirtualTester(DefectBehaviorModel(CMOS018)),
                             get_test("11N"))
        started = time.perf_counter()
        plot = runner.run(sram, defects, voltages, periods,
                          strategy=strategy)
        seconds = time.perf_counter() - started
        stats = runner.last_stats
        rows[strategy] = {
            "tester_invocations": stats.tester_invocations,
            "seconds": round(seconds, 6),
            "grid_cells": stats.grid_cells,
        }
        if strategy == "boundary":
            rows[strategy]["crosscheck_invocations"] = (
                stats.crosscheck_invocations)
            rows[strategy]["fallback"] = stats.fallback
        grids[strategy] = plot.passed
    if not np.array_equal(grids["exact"], grids["boundary"]):
        raise RuntimeError(
            "boundary-traced grid diverged from the exact grid -- the "
            "equivalence contract is broken")
    exact_calls = rows["exact"]["tester_invocations"]
    boundary_calls = max(1, rows["boundary"]["tester_invocations"])
    rows["invocation_reduction"] = round(exact_calls / boundary_calls, 2)
    rows["speedup"] = (
        round(rows["exact"]["seconds"] / rows["boundary"]["seconds"], 3)
        if rows["boundary"]["seconds"] else None)
    rows["grids_match"] = True
    return rows


def run_frontier_benchmark(config: FrontierBenchConfig | None = None,
                           ) -> dict[str, Any]:
    """Run both frontier benchmarks and assemble the document.

    Args:
        config: Benchmark shape (defaults to
            :class:`FrontierBenchConfig`).

    Returns:
        The ``BENCH_frontier.json`` document (see
        :func:`validate_frontier_bench` for the schema).

    Raises:
        RuntimeError: a fast path's records or grid diverged from the
            exact path -- an equivalence bug that must fail loudly.
    """
    config = config if config is not None else FrontierBenchConfig()
    campaign = _bench_campaign(config)
    shmoo = _bench_shmoo(config)
    return {
        "schema": FRONTIER_BENCH_SCHEMA,
        "config": asdict(config),
        "campaign": campaign,
        "shmoo": shmoo,
        # Headline figures: deterministic call-count reductions (the
        # frontier/shmoo wall-clock speedups are informational --
        # timings vary with the host, invocation counts do not) plus
        # the one enforced timing: the batch kernel's wall-clock win
        # over exact, which is the whole point of vectorising and
        # which call counts cannot see.
        "invocation_reduction_campaign": campaign["invocation_reduction"],
        "invocation_reduction_shmoo": shmoo["invocation_reduction"],
        "wallclock_speedup_batch": campaign["speedup_batch"],
    }


def validate_frontier_bench(doc: Any) -> list[str]:
    """Validate a BENCH_frontier.json document's schema and floors.

    Beyond shape, enforces the acceptance floors: the campaign must
    show at least a 5x model-invocation reduction, the shmoo at least
    a 3x tester-invocation reduction, the batch strategy at least a 5x
    wall-clock speedup over exact, and every equivalence check must
    have passed.

    Args:
        doc: Parsed JSON document.

    Returns:
        Human-readable problems; empty when the document is valid.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != FRONTIER_BENCH_SCHEMA:
        problems.append(f"schema != {FRONTIER_BENCH_SCHEMA!r}")
    if not isinstance(doc.get("config"), dict):
        problems.append("missing or non-object 'config'")
    campaign = doc.get("campaign")
    if not isinstance(campaign, dict):
        problems.append("missing or non-object 'campaign'")
    else:
        for row in ("exact", "frontier", "batch"):
            inner = campaign.get(row)
            if not isinstance(inner, dict) or not isinstance(
                    inner.get("model_invocations"), int):
                problems.append(
                    f"campaign: missing {row!r} row with "
                    "'model_invocations'")
        if campaign.get("records_match") is not True:
            problems.append("campaign: records_match is not true")
    shmoo = doc.get("shmoo")
    if not isinstance(shmoo, dict):
        problems.append("missing or non-object 'shmoo'")
    else:
        for row in ("exact", "boundary"):
            inner = shmoo.get(row)
            if not isinstance(inner, dict) or not isinstance(
                    inner.get("tester_invocations"), int):
                problems.append(
                    f"shmoo: missing {row!r} row with "
                    "'tester_invocations'")
        if shmoo.get("grids_match") is not True:
            problems.append("shmoo: grids_match is not true")
    for field, floor in (
            ("invocation_reduction_campaign", MIN_CAMPAIGN_REDUCTION),
            ("invocation_reduction_shmoo", MIN_SHMOO_REDUCTION),
            ("wallclock_speedup_batch", MIN_BATCH_WALLCLOCK)):
        value = doc.get(field)
        if not isinstance(value, (int, float)):
            problems.append(f"missing or non-numeric {field!r}")
        elif value < floor:
            problems.append(
                f"{field} = {value} is below the {floor}x floor")
    return problems
