"""Monte-Carlo device population for the silicon experiment.

Stands in for the paper's ~11k assembled SRAM parts: defect counts per
chip follow the Poisson yield model, defect kinds follow the fab's
bridge/open mix, sites come from the IFA extractor and resistances from
the fab distributions.  The same behaviour model that powers the
estimator decides each device's pass/fail at each condition -- which is
the point: the paper's headline observation is that simulation
(estimator) and silicon (population) agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.technology import CMOS018, Technology
from repro.defects.distribution import (
    DefectDensity,
    ResistanceDistribution,
    default_bridge_distribution,
    default_open_distribution,
)
from repro.ifa.extraction import IfaExtractor
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry
from repro.experiment.veqtor import VeqtorChip


@dataclass(frozen=True)
class PopulationSpec:
    """Parameters of the simulated lot.

    Attributes:
        n_devices: Number of parts tested (the paper: ~11000).
        density: Defect density / kind mix.  The default reflects a
            process-qualification lot (elevated D0 relative to a mature
            ramp).
        seed: RNG seed; the lot is deterministic given the seed.
    """

    n_devices: int = 11000
    density: DefectDensity = DefectDensity(d0_per_cm2=3.5, bridge_fraction=0.8)
    seed: int = 1105


class PopulationGenerator:
    """Draws Veqtor4 lots.

    Args:
        spec: Lot parameters.
        geometry: Per-instance memory organisation.
        tech: Technology corner.
        bridge_distribution / open_distribution: Fab R distributions.
        extractor: IFA site extractor (supplies site classes/strengths).
    """

    def __init__(self, spec: PopulationSpec | None = None,
                 geometry: MemoryGeometry = VEQTOR4_INSTANCE,
                 tech: Technology = CMOS018,
                 bridge_distribution: ResistanceDistribution | None = None,
                 open_distribution: ResistanceDistribution | None = None,
                 extractor: IfaExtractor | None = None) -> None:
        self.spec = spec if spec is not None else PopulationSpec()
        self.geometry = geometry
        self.tech = tech
        self.bridge_distribution = (bridge_distribution
                                    or default_bridge_distribution())
        self.open_distribution = open_distribution or default_open_distribution()
        self.extractor = (extractor if extractor is not None
                          else IfaExtractor(geometry))

    # ------------------------------------------------------------------
    def iter_chips(self):
        """Yield the lot one chip at a time, in legacy RNG order.

        The draw sequence (per-instance Poisson count, then per-defect
        kind/site/resistance) is exactly :meth:`generate`'s, so a
        streaming consumer sees the identical lot without holding it in
        memory -- the equivalence oracle for the sharded engine's
        ``scheme="legacy"`` path.
        """
        rng = np.random.default_rng(self.spec.seed)
        lam = self.spec.density.defects_per_chip(self.geometry.array_area_um2())
        for chip_id in range(self.spec.n_devices):
            chip = VeqtorChip(chip_id)
            for instance in range(VeqtorChip.N_INSTANCES):
                count = int(rng.poisson(lam))
                for _ in range(count):
                    chip.add_defect(instance, self._draw_defect(rng))
            yield chip

    def generate(self) -> list[VeqtorChip]:
        """Draw the lot.

        Defect count per instance ~ Poisson(area x D0); every defect is
        a bridge with probability ``bridge_fraction`` else an open, with
        site/strength from the extractor and R from the fab distribution.
        """
        return list(self.iter_chips())

    def _draw_defect(self, rng: np.random.Generator):
        if rng.random() < self.spec.density.bridge_fraction:
            sampler = self.bridge_distribution
            defect = self.extractor.sample_bridges(
                1, rng, resistance_sampler=lambda r: sampler.sample(r, 1)[0])[0]
        else:
            sampler = self.open_distribution
            defect = self.extractor.sample_opens(
                1, rng, resistance_sampler=lambda r: sampler.sample(r, 1)[0])[0]
        return defect

    # ------------------------------------------------------------------
    def expected_defective_fraction(self) -> float:
        """1 - yield of the whole 4-instance chip (sanity anchor)."""
        per_instance = self.spec.density.yield_fraction(
            self.geometry.array_area_um2())
        return 1.0 - per_instance ** VeqtorChip.N_INSTANCES
