"""Stress-condition classification of a device lot.

Implements the paper's experimental protocol (Section 5): every part is
first screened with the 11N test at the *standard* conditions; parts
that pass are then re-tested at the stress conditions (VLV, Vmax,
at-speed).  A part failing at least one stress condition while passing
the standard screen is an **interesting device** -- a test escape of the
conventional flow -- and is labelled by the exact set of stress
conditions it fails, which feeds the Venn diagram of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.technology import CMOS018, Technology
from repro.defects.behavior import DefectBehaviorModel
from repro.experiment.veqtor import VeqtorChip, VeqtorTestBench
from repro.march.library import TEST_11N
from repro.march.test import MarchTest
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry
from repro.stress import StressCondition, production_conditions
from repro.tester.ate import VirtualTester

#: The stress conditions of the paper's Venn diagram.
STRESS_NAMES = ("VLV", "Vmax", "at-speed")
#: The standard screening conditions.
STANDARD_NAMES = ("Vmin", "Vnom")


@dataclass
class DeviceRecord:
    """Classification of one part.

    Attributes:
        chip: The part.
        failed_standard: Failed the conventional screen (yield loss).
        failed_stress: The subset of stress conditions failed (empty for
            a fully good part).
    """

    chip: VeqtorChip
    failed_standard: bool
    failed_stress: frozenset[str] = frozenset()

    @property
    def interesting(self) -> bool:
        """Passed standard, failed >= 1 stress condition."""
        return not self.failed_standard and bool(self.failed_stress)


@dataclass
class ExperimentResult:
    """Outcome of classifying a lot.

    Attributes:
        n_devices: Lot size.
        records: One record per *defective* part (clean parts are
            counted, not stored).
        n_standard_fails: Parts failing the conventional screen.
    """

    n_devices: int
    records: list[DeviceRecord] = field(default_factory=list)
    n_standard_fails: int = 0

    @property
    def interesting_devices(self) -> list[DeviceRecord]:
        return [r for r in self.records if r.interesting]

    def stress_class_counts(self) -> dict[frozenset[str], int]:
        """Counts per exact stress-fail set (the Venn regions)."""
        out: dict[frozenset[str], int] = {}
        for rec in self.interesting_devices:
            out[rec.failed_stress] = out.get(rec.failed_stress, 0) + 1
        return out

    def escape_dpm(self, condition: str) -> float:
        """Escapes-per-million of the standard flow that adding one
        stress condition would have caught.

        An empty lot has no escapes by definition, so ``n_devices == 0``
        returns 0.0 instead of dividing by zero (regression-tested; the
        streaming engine can legitimately reduce empty sub-populations).
        """
        if self.n_devices <= 0:
            return 0.0
        caught = sum(1 for r in self.interesting_devices
                     if condition in r.failed_stress)
        return 1e6 * caught / self.n_devices


class StressClassifier:
    """Runs the screen-then-stress protocol over a lot.

    Args:
        tech: Technology corner.
        test: March test (the paper's production 11N by default).
        geometry: Per-instance organisation.
        behavior: Behaviour model override (shared with the estimator in
            the agreement benches).
    """

    def __init__(self, tech: Technology = CMOS018,
                 test: MarchTest = TEST_11N,
                 geometry: MemoryGeometry = VEQTOR4_INSTANCE,
                 behavior: DefectBehaviorModel | None = None) -> None:
        self.tech = tech
        self.test = test
        behavior = behavior if behavior is not None else DefectBehaviorModel(tech)
        self.bench = VeqtorTestBench(VirtualTester(behavior), geometry, tech)
        self.conditions = production_conditions(tech)

    def classify_chip(self, chip: VeqtorChip) -> DeviceRecord | None:
        """Classify one part; ``None`` for a clean (defect-free) chip.

        The per-chip core of :meth:`classify`, exposed so streaming
        consumers (:mod:`repro.experiment.streaming`) can fold records
        into sufficient statistics without materializing a lot.
        """
        if not chip.is_defective:
            return None
        failed_standard = any(
            self.bench.chip_fails(chip, self.test, self.conditions[n])
            for n in STANDARD_NAMES
        )
        if failed_standard:
            return DeviceRecord(chip, True)
        failed = frozenset(
            name for name in STRESS_NAMES
            if self.bench.chip_fails(chip, self.test, self.conditions[name])
        )
        return DeviceRecord(chip, False, failed)

    def classify(self, chips: list[VeqtorChip]) -> ExperimentResult:
        """Classify a lot; clean chips short-circuit for speed."""
        result = ExperimentResult(n_devices=len(chips))
        for chip in chips:
            record = self.classify_chip(chip)
            if record is None:
                continue
            if record.failed_standard:
                result.n_standard_fails += 1
            result.records.append(record)
        return result
