"""Silicon-experiment simulation: Veqtor4 lots, classification, Venn.

Monte-Carlo stand-in for the paper's industrial experiment: generate a
lot of Veqtor4 test chips with fab-sampled defects, run the
screen-then-stress protocol, and account the interesting devices in the
Figure 11 Venn regions.
"""

from repro.experiment.classify import (
    STANDARD_NAMES,
    STRESS_NAMES,
    DeviceRecord,
    ExperimentResult,
    StressClassifier,
)
from repro.experiment.diagnosis import (
    DeviceDiagnosis,
    LotDiagnosis,
    LotDiagnostician,
)
from repro.experiment.montecarlo import (
    MonteCarloResult,
    RegionStats,
    monte_carlo_seeds,
    run_monte_carlo,
)
from repro.experiment.population import PopulationGenerator, PopulationSpec
from repro.experiment.streaming import (
    ExperimentAccumulator,
    ShardEvaluator,
    ShardPlan,
    ShardUnit,
    StreamingExperiment,
    StreamingResult,
    StreamingRunner,
)
from repro.experiment.veqtor import VeqtorChip, VeqtorTestBench
from repro.experiment.venn import PAPER_VENN, REGION_FIELDS, VennCounts

__all__ = [
    "DeviceDiagnosis",
    "DeviceRecord",
    "ExperimentAccumulator",
    "LotDiagnosis",
    "LotDiagnostician",
    "ExperimentResult",
    "MonteCarloResult",
    "RegionStats",
    "PAPER_VENN",
    "PopulationGenerator",
    "PopulationSpec",
    "REGION_FIELDS",
    "STANDARD_NAMES",
    "STRESS_NAMES",
    "ShardEvaluator",
    "ShardPlan",
    "ShardUnit",
    "StressClassifier",
    "StreamingExperiment",
    "StreamingResult",
    "StreamingRunner",
    "VennCounts",
    "VeqtorChip",
    "VeqtorTestBench",
    "monte_carlo_seeds",
    "run_monte_carlo",
]
