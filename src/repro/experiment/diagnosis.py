"""Bitmap diagnosis of a lot's interesting devices.

The paper bitmapped its 36 interesting parts to reason about root
causes ("this points to the same address location/cell ... hence we
conclude that there could be a resistive bridge").  This module runs
the same chain over a simulated lot: every interesting device is
re-tested in full (cycle-accurate) mode at each stress condition it
fails, the fail log goes through the bitmap analyser, and the results
aggregate into per-condition defect-class histograms -- the lot-level
view behind statements like "it is also a single bit failure in the
matrix".

Full-mode simulation over a 256 Kbit instance is wasteful when the fail
signature is cell-local, so each defect is re-homed into a small
diagnosis array (the paper's bitmap viewer does the same thing: it
looks at the failing neighbourhood, not the whole die).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field

from repro.circuit.technology import CMOS018, Technology
from repro.defects.behavior import DefectBehaviorModel
from repro.experiment.classify import ExperimentResult
from repro.march.library import TEST_11N
from repro.march.test import MarchTest
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram
from repro.stress import production_conditions
from repro.tester.ate import VirtualTester
from repro.tester.bitmap import BitmapAnalyzer, DefectClassHint


@dataclass
class DeviceDiagnosis:
    """Bitmap findings for one interesting device.

    Attributes:
        chip_id: The part.
        failed_stress: Conditions it fails.
        hints: Condition name -> structural classification.
        summaries: Condition name -> human-readable bitmap summary.
    """

    chip_id: int
    failed_stress: frozenset[str]
    hints: dict[str, DefectClassHint] = field(default_factory=dict)
    summaries: dict[str, str] = field(default_factory=dict)


@dataclass
class LotDiagnosis:
    """Aggregated diagnosis of a lot.

    Attributes:
        devices: Per-device findings.
        hint_histogram: Condition -> Counter of defect-class hints.
    """

    devices: list[DeviceDiagnosis] = field(default_factory=list)
    hint_histogram: dict[str, Counter] = field(default_factory=dict)

    def merge(self, other: "LotDiagnosis") -> "LotDiagnosis":
        """Fold ``other`` into this diagnosis in place and return self.

        Device lists concatenate and per-condition hint histograms add
        counter-wise, mirroring the
        :meth:`repro.obs.metrics.MetricsRegistry.merge` reduce contract
        so shard-local diagnoses combine into the lot-level view.  The
        resulting histogram is order-independent (Counter addition is
        commutative and associative; property-tested); the device list
        keeps merge order, so reduce in shard order for deterministic
        rendering.
        """
        self.devices.extend(other.devices)
        for condition, counts in other.hint_histogram.items():
            self.hint_histogram.setdefault(condition, Counter())
            self.hint_histogram[condition] += counts
        return self

    def render(self) -> str:
        lines = [f"diagnosed devices: {len(self.devices)}"]
        for condition, counts in sorted(self.hint_histogram.items()):
            lines.append(f"  fails at {condition}:")
            for hint, n in counts.most_common():
                lines.append(f"    {hint.value:>20}: {n}")
        return "\n".join(lines)


class LotDiagnostician:
    """Runs bitmap diagnosis over a classified lot.

    Args:
        tech: Technology corner.
        test: March test (the production 11N by default).
        diagnosis_geometry: Small array the defects are re-homed into
            for cycle-accurate simulation.
    """

    def __init__(self, tech: Technology = CMOS018,
                 test: MarchTest = TEST_11N,
                 diagnosis_geometry: MemoryGeometry | None = None) -> None:
        self.tech = tech
        self.test = test
        self.geometry = (diagnosis_geometry if diagnosis_geometry is not None
                         else MemoryGeometry(8, 2, 4))
        self.tester = VirtualTester(DefectBehaviorModel(tech))
        self.analyzer = BitmapAnalyzer(self.geometry, test)
        self.conditions = production_conditions(tech)
        self._sram = Sram(self.geometry, tech, name="diagnosis-array")

    # ------------------------------------------------------------------
    def _rehome(self, defects):
        """Map each defect's victim cell into the diagnosis array."""
        out = []
        for d in defects:
            out.append(dataclasses.replace(
                d, cell=d.cell % self.geometry.bits))
        return out

    def diagnose_device(self, record) -> DeviceDiagnosis:
        """Full-mode re-test + bitmap for one interesting device."""
        diagnosis = DeviceDiagnosis(record.chip.chip_id,
                                    record.failed_stress)
        defects = self._rehome(record.chip.all_defects)
        for name in sorted(record.failed_stress):
            result = self.tester.test_device(
                self._sram, defects, self.test, self.conditions[name],
                quick=False)
            bitmap = self.analyzer.diagnose(result.fails)
            diagnosis.hints[name] = bitmap.hint
            diagnosis.summaries[name] = bitmap.summary
        return diagnosis

    def diagnose(self, experiment: ExperimentResult) -> LotDiagnosis:
        """Diagnose every interesting device of a classified lot."""
        lot = LotDiagnosis()
        for record in experiment.interesting_devices:
            device = self.diagnose_device(record)
            lot.devices.append(device)
            for condition, hint in device.hints.items():
                lot.hint_histogram.setdefault(
                    condition, Counter())[hint] += 1
        return lot
