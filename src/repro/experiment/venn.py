"""Venn-diagram accounting of interesting devices (paper Figure 11).

The paper's headline experimental result: out of ~11k parts, 36 passed
the standard test but failed under stress -- 27 only at VLV, 3 only at
Vmax, 3 only at-speed, 2 at VLV+Vmax, 1 at VLV+at-speed.
:class:`VennCounts` holds the seven regions of the three-set diagram,
renders an ASCII summary, and compares populations against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiment.classify import ExperimentResult

_REGIONS: tuple[frozenset[str], ...] = (
    frozenset({"VLV"}),
    frozenset({"Vmax"}),
    frozenset({"at-speed"}),
    frozenset({"VLV", "Vmax"}),
    frozenset({"VLV", "at-speed"}),
    frozenset({"Vmax", "at-speed"}),
    frozenset({"VLV", "Vmax", "at-speed"}),
)


@dataclass(frozen=True)
class VennCounts:
    """The seven regions of the VLV/Vmax/at-speed Venn diagram.

    Attributes mirror the paper's Figure 11 labels.
    """

    vlv_only: int = 0
    vmax_only: int = 0
    atspeed_only: int = 0
    vlv_vmax: int = 0
    vlv_atspeed: int = 0
    vmax_atspeed: int = 0
    all_three: int = 0

    @property
    def total(self) -> int:
        return (self.vlv_only + self.vmax_only + self.atspeed_only
                + self.vlv_vmax + self.vlv_atspeed + self.vmax_atspeed
                + self.all_three)

    @property
    def vlv_total(self) -> int:
        """All parts failing VLV (the paper's key stress condition)."""
        return (self.vlv_only + self.vlv_vmax + self.vlv_atspeed
                + self.all_three)

    @property
    def vmax_total(self) -> int:
        return (self.vmax_only + self.vlv_vmax + self.vmax_atspeed
                + self.all_three)

    @property
    def atspeed_total(self) -> int:
        return (self.atspeed_only + self.vlv_atspeed + self.vmax_atspeed
                + self.all_three)

    def as_dict(self) -> dict[str, int]:
        return {
            "VLV only": self.vlv_only,
            "Vmax only": self.vmax_only,
            "at-speed only": self.atspeed_only,
            "VLV & Vmax": self.vlv_vmax,
            "VLV & at-speed": self.vlv_atspeed,
            "Vmax & at-speed": self.vmax_atspeed,
            "all three": self.all_three,
        }

    def render(self, title: str = "") -> str:
        """ASCII Venn summary."""
        lines = [title] if title else []
        lines.append(f"interesting devices: {self.total}")
        for label, count in self.as_dict().items():
            lines.append(f"  {label:>16}: {count}")
        lines.append(
            f"  per-condition totals: VLV={self.vlv_total} "
            f"Vmax={self.vmax_total} at-speed={self.atspeed_total}"
        )
        return "\n".join(lines)

    @classmethod
    def from_experiment(cls, result: ExperimentResult) -> "VennCounts":
        counts = result.stress_class_counts()

        def get(*names: str) -> int:
            return counts.get(frozenset(names), 0)

        return cls(
            vlv_only=get("VLV"),
            vmax_only=get("Vmax"),
            atspeed_only=get("at-speed"),
            vlv_vmax=get("VLV", "Vmax"),
            vlv_atspeed=get("VLV", "at-speed"),
            vmax_atspeed=get("Vmax", "at-speed"),
            all_three=get("VLV", "Vmax", "at-speed"),
        )


#: The paper's Figure 11 numbers (out of ~11k devices).
PAPER_VENN = VennCounts(
    vlv_only=27,
    vmax_only=3,
    atspeed_only=3,
    vlv_vmax=2,
    vlv_atspeed=1,
    vmax_atspeed=0,
    all_three=0,
)
