"""Venn-diagram accounting of interesting devices (paper Figure 11).

The paper's headline experimental result: out of ~11k parts, 36 passed
the standard test but failed under stress -- 27 only at VLV, 3 only at
Vmax, 3 only at-speed, 2 at VLV+Vmax, 1 at VLV+at-speed.
:class:`VennCounts` holds the seven regions of the three-set diagram,
renders an ASCII summary, and compares populations against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiment.classify import ExperimentResult

_REGIONS: tuple[frozenset[str], ...] = (
    frozenset({"VLV"}),
    frozenset({"Vmax"}),
    frozenset({"at-speed"}),
    frozenset({"VLV", "Vmax"}),
    frozenset({"VLV", "at-speed"}),
    frozenset({"Vmax", "at-speed"}),
    frozenset({"VLV", "Vmax", "at-speed"}),
)

#: Exact stress-fail set -> :class:`VennCounts` field name.  The reduce
#: step of the streaming experiment engine keys on this mapping, so it
#: is part of the accumulator payload contract.
REGION_FIELDS: dict[frozenset[str], str] = {
    frozenset({"VLV"}): "vlv_only",
    frozenset({"Vmax"}): "vmax_only",
    frozenset({"at-speed"}): "atspeed_only",
    frozenset({"VLV", "Vmax"}): "vlv_vmax",
    frozenset({"VLV", "at-speed"}): "vlv_atspeed",
    frozenset({"Vmax", "at-speed"}): "vmax_atspeed",
    frozenset({"VLV", "Vmax", "at-speed"}): "all_three",
}


@dataclass(frozen=True)
class VennCounts:
    """The seven regions of the VLV/Vmax/at-speed Venn diagram.

    Attributes mirror the paper's Figure 11 labels.
    """

    vlv_only: int = 0
    vmax_only: int = 0
    atspeed_only: int = 0
    vlv_vmax: int = 0
    vlv_atspeed: int = 0
    vmax_atspeed: int = 0
    all_three: int = 0

    @property
    def total(self) -> int:
        return (self.vlv_only + self.vmax_only + self.atspeed_only
                + self.vlv_vmax + self.vlv_atspeed + self.vmax_atspeed
                + self.all_three)

    @property
    def vlv_total(self) -> int:
        """All parts failing VLV (the paper's key stress condition)."""
        return (self.vlv_only + self.vlv_vmax + self.vlv_atspeed
                + self.all_three)

    @property
    def vmax_total(self) -> int:
        return (self.vmax_only + self.vlv_vmax + self.vmax_atspeed
                + self.all_three)

    @property
    def atspeed_total(self) -> int:
        return (self.atspeed_only + self.vlv_atspeed + self.vmax_atspeed
                + self.all_three)

    def as_dict(self) -> dict[str, int]:
        return {
            "VLV only": self.vlv_only,
            "Vmax only": self.vmax_only,
            "at-speed only": self.atspeed_only,
            "VLV & Vmax": self.vlv_vmax,
            "VLV & at-speed": self.vlv_atspeed,
            "Vmax & at-speed": self.vmax_atspeed,
            "all three": self.all_three,
        }

    def __add__(self, other: "VennCounts") -> "VennCounts":
        """Field-wise sum: combine two disjoint sub-population Venns.

        Addition is commutative and associative with ``VennCounts()``
        as identity (property-tested), which makes ``VennCounts`` a
        valid map-reduce accumulator: shard-local Venns merge into the
        lot-level Venn in any order.
        """
        if not isinstance(other, VennCounts):
            return NotImplemented
        return VennCounts(
            vlv_only=self.vlv_only + other.vlv_only,
            vmax_only=self.vmax_only + other.vmax_only,
            atspeed_only=self.atspeed_only + other.atspeed_only,
            vlv_vmax=self.vlv_vmax + other.vlv_vmax,
            vlv_atspeed=self.vlv_atspeed + other.vlv_atspeed,
            vmax_atspeed=self.vmax_atspeed + other.vmax_atspeed,
            all_three=self.all_three + other.all_three,
        )

    def merge(self, other: "VennCounts") -> "VennCounts":
        """Alias of :meth:`__add__` mirroring the
        :meth:`repro.obs.metrics.MetricsRegistry.merge` reduce contract
        (``VennCounts`` is frozen, so merge returns the combined value
        instead of mutating in place)."""
        return self + other

    def render(self, title: str = "") -> str:
        """ASCII Venn summary."""
        lines = [title] if title else []
        lines.append(f"interesting devices: {self.total}")
        for label, count in self.as_dict().items():
            lines.append(f"  {label:>16}: {count}")
        lines.append(
            f"  per-condition totals: VLV={self.vlv_total} "
            f"Vmax={self.vmax_total} at-speed={self.atspeed_total}"
        )
        return "\n".join(lines)

    @classmethod
    def from_class_counts(
            cls, counts: dict[frozenset[str], int]) -> "VennCounts":
        """Build from exact stress-fail-set counts (the reduce input).

        Raises:
            ValueError: a key is not one of the seven Venn regions.
        """
        unknown = sorted(
            "+".join(sorted(key)) for key in counts
            if key not in REGION_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown Venn region(s): {', '.join(unknown)}")
        fields = {REGION_FIELDS[key]: n for key, n in counts.items()}
        return cls(**fields)

    @classmethod
    def from_experiment(cls, result: ExperimentResult) -> "VennCounts":
        return cls.from_class_counts(result.stress_class_counts())


#: The paper's Figure 11 numbers (out of ~11k devices).
PAPER_VENN = VennCounts(
    vlv_only=27,
    vmax_only=3,
    atspeed_only=3,
    vlv_vmax=2,
    vlv_atspeed=1,
    vmax_atspeed=0,
    all_three=0,
)
