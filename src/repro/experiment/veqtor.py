"""The Veqtor4 test-chip model.

"The test chip (Veqtor4; built on CMOS 0.18um technology) contains four
instances of SRAMs of 256 K bits each.  Each of the memory cores can be
accessed directly from the primary inputs/outputs through a controller.
Memory BIST was not implemented..." (paper, Section 2)

:class:`VeqtorChip` models one such part: four
:class:`~repro.memory.sram.Sram` instances sharing a technology corner,
each carrying its own defect list; the chip-level verdict at a condition
is the AND of the instance verdicts (the paper tests all four cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.technology import CMOS018, Technology
from repro.defects.models import Defect
from repro.march.test import MarchTest
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry
from repro.memory.sram import Sram
from repro.stress import StressCondition
from repro.tester.ate import VirtualTester


@dataclass
class VeqtorChip:
    """One Veqtor4 part.

    Attributes:
        chip_id: Serial number within the experiment.
        defects: Per-instance defect lists (length = ``n_instances``).
    """

    chip_id: int
    defects: list[list[Defect]] = field(default_factory=lambda: [[] for _ in range(4)])

    N_INSTANCES = 4

    def __post_init__(self) -> None:
        if len(self.defects) != self.N_INSTANCES:
            raise ValueError(
                f"Veqtor4 carries {self.N_INSTANCES} instances, got "
                f"{len(self.defects)} defect lists"
            )

    @property
    def all_defects(self) -> list[Defect]:
        return [d for inst in self.defects for d in inst]

    @property
    def is_defective(self) -> bool:
        return bool(self.all_defects)

    def add_defect(self, instance: int, defect: Defect) -> None:
        if not 0 <= instance < self.N_INSTANCES:
            raise ValueError(f"instance out of range: {instance}")
        self.defects[instance].append(defect)


class VeqtorTestBench:
    """Tests Veqtor4 chips through the virtual ATE.

    Args:
        tester: The virtual ATE (carries the behaviour model).
        geometry: Per-instance organisation (defaults to 256 Kbit).
        tech: Technology corner.
    """

    def __init__(self, tester: VirtualTester,
                 geometry: MemoryGeometry = VEQTOR4_INSTANCE,
                 tech: Technology = CMOS018) -> None:
        self.tester = tester
        self.geometry = geometry
        self.tech = tech
        # One SRAM model serves all instances (state is reset per run).
        self._sram = Sram(geometry, tech, name="veqtor4-core")

    def chip_fails(self, chip: VeqtorChip, test: MarchTest,
                   condition: StressCondition) -> bool:
        """Chip-level verdict: any instance failing fails the part.

        Defect-free instances are skipped once timing is known good:
        with no defects the tester's verdict is exactly the timing
        check, which is instance-independent -- so the short-circuit
        cannot change the verdict, and the streaming engine (where
        most defective chips carry a single defect in one of four
        instances) saves three no-op tester calls per chip.
        """
        if not self._sram.meets_timing(condition.vdd, condition.period):
            return True
        for instance_defects in chip.defects:
            if not instance_defects:
                continue
            result = self.tester.test_device(
                self._sram, instance_defects, test, condition, quick=True)
            if not result.passed:
                return True
        return False

    def chip_signature(self, chip: VeqtorChip, test: MarchTest,
                       conditions: dict[str, StressCondition],
                       ) -> dict[str, bool]:
        """name -> failed? across a condition suite."""
        return {
            name: self.chip_fails(chip, test, cond)
            for name, cond in conditions.items()
        }
