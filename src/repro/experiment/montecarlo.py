"""Multi-seed Monte-Carlo statistics for the silicon experiment.

A single simulated lot (like the paper's single physical lot) carries
Poisson noise: the Venn counts wander seed to seed.  This module runs
the experiment across many seeds and reports mean/min/max per Venn
region plus the stability of the *structural* claims (VLV dominance,
empty regions) -- quantifying how repeatable the paper's Figure 11
pattern is under the library's population model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiment.classify import StressClassifier
from repro.experiment.population import PopulationGenerator, PopulationSpec
from repro.experiment.venn import VennCounts

#: The Venn regions in reporting order.
REGIONS = ("vlv_only", "vmax_only", "atspeed_only", "vlv_vmax",
           "vlv_atspeed", "vmax_atspeed", "all_three")


@dataclass
class RegionStats:
    """Across-seed statistics for one Venn region."""

    region: str
    counts: list[int] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.counts)) if self.counts else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.counts)) if self.counts else 0.0

    @property
    def min(self) -> int:
        return min(self.counts) if self.counts else 0

    @property
    def max(self) -> int:
        return max(self.counts) if self.counts else 0


@dataclass
class MonteCarloResult:
    """Aggregated multi-seed experiment outcome.

    Attributes:
        seeds: The seeds run.
        venns: Per-seed Venn counts.
        stats: Region -> across-seed statistics.
    """

    seeds: list[int]
    venns: list[VennCounts]
    stats: dict[str, RegionStats]

    @property
    def n_runs(self) -> int:
        return len(self.seeds)

    def structural_stability(self) -> dict[str, float]:
        """Fraction of runs in which each structural claim holds."""
        n = max(self.n_runs, 1)
        vlv_dominant = sum(
            1 for v in self.venns
            if v.vlv_only >= max(v.vmax_only, v.atspeed_only)) / n
        empty_regions = sum(
            1 for v in self.venns
            if v.vmax_atspeed == 0 and v.all_three == 0) / n
        has_minor_classes = sum(
            1 for v in self.venns
            if v.vmax_only > 0 and v.atspeed_only > 0) / n
        return {
            "vlv_only_dominates": vlv_dominant,
            "vmax_atspeed_and_triple_empty": empty_regions,
            "minor_classes_present": has_minor_classes,
        }

    def render(self) -> str:
        lines = [f"{self.n_runs} lots x {len(self.venns)} runs"]
        lines.append(f"{'region':>16} {'mean':>6} {'std':>5} "
                     f"{'min':>4} {'max':>4}")
        for region in REGIONS:
            s = self.stats[region]
            lines.append(f"{region:>16} {s.mean:>6.1f} {s.std:>5.1f} "
                         f"{s.min:>4} {s.max:>4}")
        lines.append("structural stability:")
        for claim, frac in self.structural_stability().items():
            lines.append(f"  {claim}: {100 * frac:.0f} %")
        return "\n".join(lines)


def monte_carlo_seeds(base_seed: int, n_runs: int,
                      scheme: str = "legacy") -> list[int]:
    """Derive the per-run population seeds.

    ``"legacy"`` keeps the historical ``base_seed + k`` sequential
    integers, preserving every previously published Monte-Carlo result
    byte for byte.  Sequential integer seeds are statistically safe for
    PCG64 in practice but carry no independence *guarantee*;
    ``"spawn"`` derives each run's seed from
    ``SeedSequence(base_seed).spawn(n_runs)``, whose children are
    provably independent substreams.  The tradeoff: spawn seeds differ
    from legacy seeds, so switching schemes changes (slightly) every
    region count -- hence legacy stays the default.
    """
    if scheme == "legacy":
        return [base_seed + k for k in range(n_runs)]
    if scheme == "spawn":
        children = np.random.SeedSequence(base_seed).spawn(n_runs)
        return [int(c.generate_state(1, np.uint64)[0]) for c in children]
    raise ValueError(f"unknown seed_scheme {scheme!r} "
                     "(expected 'legacy' or 'spawn')")


def run_monte_carlo(n_runs: int = 10, n_devices: int = 11000,
                    base_seed: int = 1105,
                    classifier: StressClassifier | None = None,
                    seed_scheme: str = "legacy",
                    ) -> MonteCarloResult:
    """Run the silicon experiment across ``n_runs`` seeds.

    Seeds come from :func:`monte_carlo_seeds` under ``seed_scheme``
    (default ``"legacy"`` = ``base_seed + k``, reproducing historical
    results; ``"spawn"`` = independent ``SeedSequence`` substreams).
    The classifier (and hence the behaviour model) is shared across
    runs.
    """
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    classifier = classifier if classifier is not None else StressClassifier()
    seeds = monte_carlo_seeds(base_seed, n_runs, seed_scheme)
    venns: list[VennCounts] = []
    for seed in seeds:
        spec = PopulationSpec(n_devices=n_devices, seed=seed)
        chips = PopulationGenerator(spec).generate()
        venns.append(VennCounts.from_experiment(classifier.classify(chips)))
    stats = {
        region: RegionStats(region, [getattr(v, region) for v in venns])
        for region in REGIONS
    }
    return MonteCarloResult(seeds, venns, stats)
