"""Sufficient statistics for the streaming experiment reduce step.

:class:`ExperimentAccumulator` is everything the experiment reports --
Venn region counts, standard-screen fails, per-condition escape/DPM
tallies, diagnosis hint histograms -- in O(classes) memory, never
O(devices).  It is the map-reduce value type: each shard evaluator
returns one as its payload, the runner merges them in shard order, and
the merged accumulator is the lot-level result.  The ``merge()``
contract mirrors :meth:`repro.obs.metrics.MetricsRegistry.merge`
(in-place, field-wise additive, commutative and associative up to the
payload encoding -- property-tested).

``as_payload()`` / ``from_payload()`` round-trip the accumulator
through plain JSON-able dicts with sorted keys, so canonical-JSON
equality of payloads is the engine's byte-identity oracle against the
legacy path (``scheme="legacy"``, single shard).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.experiment.classify import DeviceRecord, ExperimentResult
from repro.experiment.diagnosis import LotDiagnosis
from repro.experiment.venn import VennCounts

#: Separator joining a stress-fail set into a payload key.  Condition
#: names never contain it ("at-speed" uses a hyphen), so the encoding
#: round-trips.
_REGION_SEP = "+"


def _region_key(region: frozenset[str]) -> str:
    """Canonical payload key for one exact stress-fail set."""
    return _REGION_SEP.join(sorted(region))


@dataclass
class ExperimentAccumulator:
    """Mergeable sufficient statistics of a (partial) experiment.

    Attributes:
        devices: Devices covered (including clean ones).
        defective: Devices carrying at least one defect.
        standard_fails: Devices failing the conventional screen.
        errors: Devices lost to poisoned shards (counted, not
            classified; ``0`` outside fault-injection runs).
        class_counts: Exact stress-fail set -> interesting-device count
            (the Venn regions).
        hint_counts: Condition -> Counter of bitmap defect-class hint
            values (populated only when diagnosis is enabled).
    """

    devices: int = 0
    defective: int = 0
    standard_fails: int = 0
    errors: int = 0
    class_counts: dict[frozenset[str], int] = field(default_factory=dict)
    hint_counts: dict[str, Counter] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Map side
    # ------------------------------------------------------------------
    def observe(self, record: DeviceRecord) -> None:
        """Fold one defective device's classification in."""
        self.defective += 1
        if record.failed_standard:
            self.standard_fails += 1
        elif record.failed_stress:
            key = record.failed_stress
            self.class_counts[key] = self.class_counts.get(key, 0) + 1

    def observe_hints(self, hints: dict[str, Any]) -> None:
        """Fold one diagnosed device's per-condition hints in.

        Accepts :class:`~repro.tester.bitmap.DefectClassHint` values or
        their string values (the payload form).
        """
        for condition, hint in hints.items():
            value = getattr(hint, "value", hint)
            self.hint_counts.setdefault(condition, Counter())[value] += 1

    # ------------------------------------------------------------------
    # Reduce side
    # ------------------------------------------------------------------
    def merge(self, other: "ExperimentAccumulator") -> "ExperimentAccumulator":
        """Fold ``other`` in place and return self (additive merge)."""
        self.devices += other.devices
        self.defective += other.defective
        self.standard_fails += other.standard_fails
        self.errors += other.errors
        for region, n in other.class_counts.items():
            self.class_counts[region] = self.class_counts.get(region, 0) + n
        for condition, counts in other.hint_counts.items():
            self.hint_counts.setdefault(condition, Counter())
            self.hint_counts[condition] += counts
        return self

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def interesting(self) -> int:
        """Interesting devices (passed standard, failed >= 1 stress)."""
        return sum(self.class_counts.values())

    @property
    def venn(self) -> VennCounts:
        """The Venn regions of the accumulated interesting devices."""
        return VennCounts.from_class_counts(self.class_counts)

    def escape_dpm(self, condition: str) -> float:
        """Escapes-per-million one stress condition would have caught.

        Zero for an empty accumulator (nothing tested, nothing
        escaped).
        """
        if self.devices <= 0:
            return 0.0
        caught = sum(n for region, n in self.class_counts.items()
                     if condition in region)
        return 1e6 * caught / self.devices

    # ------------------------------------------------------------------
    # Payload round-trip
    # ------------------------------------------------------------------
    def as_payload(self) -> dict[str, Any]:
        """JSON-able dict with sorted keys (the checkpoint payload).

        Canonical-JSON equality of payloads is the engine's
        byte-identity oracle, so every container here is sorted.
        """
        return {
            "devices": self.devices,
            "defective": self.defective,
            "standard_fails": self.standard_fails,
            "errors": self.errors,
            "classes": {
                _region_key(region): self.class_counts[region]
                for region in sorted(self.class_counts, key=_region_key)
            },
            "hints": {
                condition: {
                    value: counts[value] for value in sorted(counts)
                }
                for condition, counts in sorted(self.hint_counts.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ExperimentAccumulator":
        """Rebuild an accumulator from :meth:`as_payload` output."""
        acc = cls(
            devices=int(payload["devices"]),
            defective=int(payload["defective"]),
            standard_fails=int(payload["standard_fails"]),
            errors=int(payload.get("errors", 0)),
        )
        for key, n in payload.get("classes", {}).items():
            acc.class_counts[frozenset(key.split(_REGION_SEP))] = int(n)
        for condition, counts in payload.get("hints", {}).items():
            acc.hint_counts[condition] = Counter(
                {value: int(n) for value, n in counts.items()})
        return acc

    @classmethod
    def from_experiment(cls, result: ExperimentResult,
                        diagnosis: LotDiagnosis | None = None,
                        ) -> "ExperimentAccumulator":
        """Build from a legacy in-memory :class:`ExperimentResult`.

        The equivalence-oracle constructor: a ``scheme="legacy"``
        streaming run must produce a payload byte-identical (as
        canonical JSON) to this one built from
        ``classifier.classify(generator.generate())``.
        """
        acc = cls(devices=result.n_devices)
        for record in result.records:
            acc.observe(record)
        if diagnosis is not None:
            for condition, counts in diagnosis.hint_histogram.items():
                for hint, n in counts.items():
                    acc.hint_counts.setdefault(
                        condition, Counter())[hint.value] += n
        return acc
