"""Deterministic shard plans for the streaming experiment engine.

A shard plan splits the device index space ``[0, n_devices)`` into
fixed-size shards, each a contiguous run of whole *blocks*.  Blocks --
not shards -- are the RNG unit: every block draws from an independent
substream derived from ``(seed, block_index)`` via
``numpy.random.SeedSequence`` spawn keys, so the population is a pure
function of ``(seed, n_devices, block_devices)``.  Shard size and
worker count only group blocks; they can never change what any device
looks like, which is the invariance contract the bench asserts
(``shard_invariant`` / ``worker_invariant``).

The ``legacy`` scheme instead replays the original single-stream
:meth:`~repro.experiment.population.PopulationGenerator.iter_chips`
order as one shard, giving a small-scale equivalence oracle against the
object-materializing path.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The two supported RNG schemes.
SCHEMES = ("spawn", "legacy")

#: Default devices per RNG block (the vectorised generation batch).
DEFAULT_BLOCK_DEVICES = 4096

#: Default devices per shard (the unit of dispatch and checkpointing).
DEFAULT_SHARD_DEVICES = 65536


@dataclass(frozen=True)
class ShardUnit:
    """One contiguous device range dispatched as a work unit.

    Attributes:
        index: Position in the shard plan (the reduce happens in this
            order).
        start: First device index (inclusive).
        stop: Last device index (exclusive).
    """

    index: int
    start: int
    stop: int

    @property
    def unit_id(self) -> str:
        """Stable checkpoint/journal key for this shard."""
        return f"shard:{self.index:05d}:{self.start}-{self.stop}"

    @property
    def devices(self) -> int:
        """Number of devices in the shard."""
        return self.stop - self.start

    def __str__(self) -> str:
        return self.unit_id


@dataclass(frozen=True)
class ShardPlan:
    """The full sharding layout of one streaming experiment.

    Attributes:
        n_devices: Total population size.
        seed: Root RNG seed (block substreams spawn from it).
        shard_devices: Devices per shard; must be a whole number of
            blocks under the ``spawn`` scheme.  Ignored under
            ``legacy`` (which is inherently single-stream, hence
            single-shard).
        block_devices: Devices per RNG block.
        scheme: ``"spawn"`` (sharded substreams) or ``"legacy"``
            (original single-stream draw order).
    """

    n_devices: int
    seed: int = 1105
    shard_devices: int = DEFAULT_SHARD_DEVICES
    block_devices: int = DEFAULT_BLOCK_DEVICES
    scheme: str = "spawn"

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ValueError("n_devices must be positive")
        if self.scheme not in SCHEMES:
            raise ValueError(
                f"scheme must be one of {SCHEMES}, got {self.scheme!r}")
        if self.shard_devices <= 0:
            raise ValueError("shard_devices must be positive")
        if self.block_devices <= 0:
            raise ValueError("block_devices must be positive")
        if (self.scheme == "spawn"
                and self.shard_devices % self.block_devices != 0):
            raise ValueError(
                f"shard_devices ({self.shard_devices}) must be a "
                f"multiple of block_devices ({self.block_devices}) so "
                "shards group whole RNG blocks")

    def shards(self) -> list[ShardUnit]:
        """The ordered shard list (``legacy``: exactly one shard)."""
        if self.scheme == "legacy":
            return [ShardUnit(0, 0, self.n_devices)]
        out: list[ShardUnit] = []
        start = 0
        while start < self.n_devices:
            stop = min(start + self.shard_devices, self.n_devices)
            out.append(ShardUnit(len(out), start, stop))
            start = stop
        return out

    def blocks_of(self, shard: ShardUnit) -> list[tuple[int, int, int]]:
        """The ``(block_index, start, stop)`` runs covering ``shard``.

        Block indices are *global* (``start // block_devices``), so a
        block's substream is the same no matter which shard layout
        groups it.
        """
        out: list[tuple[int, int, int]] = []
        start = shard.start
        while start < shard.stop:
            index = start // self.block_devices
            stop = min((index + 1) * self.block_devices, shard.stop)
            out.append((index, start, stop))
            start = stop
        return out
