"""Worker-side core of the streaming experiment: generation + map step.

This module runs inside pool worker processes (it is listed in the
code-lint pack's worker modules), so it never touches an event bus:
every fact ships back to the parent inside the
:class:`~repro.runner.evaluate.UnitOutcome` payload.

:class:`StreamingExperiment` is the campaign-shaped object the
:mod:`repro.perf` executors understand -- it pickles small (lazy
caches are dropped), exposes ``behavior`` for chaos probes and a
``unit_evaluator`` factory that
:func:`repro.perf.executor.make_evaluator` prefers over the stock
:class:`~repro.runner.evaluate.UnitEvaluator`.

Generation is vectorised per RNG block: one ``poisson`` call for the
whole block's defect-count matrix, one uniform draw for defect kinds,
and one batched attribute-per-array defect draw
(:meth:`~repro.ifa.extraction.IfaExtractor.sample_batch`), after which
only *defective* chips materialize as objects -- O(defective), not
O(devices), and ~94 % of devices are clean at the paper's D0.

Exact-path equivalence: tests/experiment/test_streaming.py
(``scheme="legacy"`` reduces the original single-stream draw order to
a payload byte-identical to the materialised pipeline's).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from typing import Any

import numpy as np

from repro.circuit.technology import CMOS018, Technology
from repro.defects.distribution import (
    DefectDensity,
    ResistanceDistribution,
    default_bridge_distribution,
    default_open_distribution,
)
from repro.defects.models import DefectKind
from repro.experiment.classify import StressClassifier
from repro.experiment.diagnosis import LotDiagnostician
from repro.experiment.population import PopulationGenerator, PopulationSpec
from repro.experiment.streaming.accumulator import ExperimentAccumulator
from repro.experiment.streaming.plan import ShardPlan, ShardUnit
from repro.experiment.veqtor import VeqtorChip
from repro.ifa.extraction import IfaExtractor
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry
from repro.runner.evaluate import UnitDeadlineExceeded, UnitOutcome
from repro.runner.retry import RetryStats

#: Names of the lazily-built caches dropped from pickles: each worker
#: rebuilds them deterministically, keeping the pool-init payload small
#: (the classifier's test bench alone is megabytes once warmed).
_LAZY_SLOTS = ("_classifier", "_generator", "_extractor", "_diagnostician")


class StreamingExperiment:
    """The sharded million-device experiment (campaign-shaped).

    Args:
        n_devices: Population size (the paper: ~11k; this engine:
            10^6 -- 10^7).
        seed: Root RNG seed.
        density: Defect density / kind mix (defaults to the
            qualification-lot :class:`PopulationSpec` density).
        shard_devices: Devices per dispatch/checkpoint unit.
        block_devices: Devices per RNG block (the vectorised batch).
        scheme: ``"spawn"`` (sharded block substreams) or ``"legacy"``
            (single-stream, single-shard; byte-identical to
            :class:`~repro.experiment.population.PopulationGenerator`).
        geometry: Per-instance memory organisation.
        tech: Technology corner.
        behavior: Behaviour-model override (possibly chaos-wrapped;
            exposed as ``.behavior`` for the executor fault probes).
        diagnose: Run bitmap diagnosis on interesting devices and
            accumulate hint histograms.
        bridge_distribution / open_distribution: Fab R distributions.
    """

    def __init__(self, n_devices: int = 1_000_000, seed: int = 1105,
                 density: DefectDensity | None = None,
                 shard_devices: int | None = None,
                 block_devices: int | None = None,
                 scheme: str = "spawn",
                 geometry: MemoryGeometry = VEQTOR4_INSTANCE,
                 tech: Technology = CMOS018,
                 behavior: Any = None,
                 diagnose: bool = False,
                 bridge_distribution: ResistanceDistribution | None = None,
                 open_distribution: ResistanceDistribution | None = None,
                 ) -> None:
        plan_kwargs: dict[str, Any] = {}
        if shard_devices is not None:
            plan_kwargs["shard_devices"] = shard_devices
        if block_devices is not None:
            plan_kwargs["block_devices"] = block_devices
        self.plan = ShardPlan(n_devices=n_devices, seed=seed,
                              scheme=scheme, **plan_kwargs)
        self.density = (density if density is not None
                        else PopulationSpec().density)
        self.geometry = geometry
        self.tech = tech
        self.diagnose = diagnose
        self.bridge_distribution = (bridge_distribution
                                    or default_bridge_distribution())
        self.open_distribution = (open_distribution
                                  or default_open_distribution())
        self._behavior = behavior
        self._classifier: StressClassifier | None = None
        self._generator: PopulationGenerator | None = None
        self._extractor: IfaExtractor | None = None
        self._diagnostician: LotDiagnostician | None = None

    # ------------------------------------------------------------------
    # Pickling: ship configuration, rebuild caches per process
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        for name in _LAZY_SLOTS:
            state[name] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Lazily-built collaborators
    # ------------------------------------------------------------------
    @property
    def spec(self) -> PopulationSpec:
        """The equivalent legacy population spec."""
        return PopulationSpec(n_devices=self.plan.n_devices,
                              density=self.density, seed=self.plan.seed)

    @property
    def classifier(self) -> StressClassifier:
        """The (cached) screen-then-stress classifier."""
        if self._classifier is None:
            self._classifier = StressClassifier(
                tech=self.tech, geometry=self.geometry,
                behavior=self._behavior)
        return self._classifier

    @property
    def behavior(self) -> Any:
        """The behaviour model under test (chaos probes hook in here)."""
        return self.classifier.bench.tester.behavior

    @property
    def extractor(self) -> IfaExtractor:
        """The (cached) IFA site extractor."""
        if self._extractor is None:
            self._extractor = IfaExtractor(self.geometry)
        return self._extractor

    @property
    def generator(self) -> PopulationGenerator:
        """The (cached) legacy-scheme population generator."""
        if self._generator is None:
            self._generator = PopulationGenerator(
                self.spec, geometry=self.geometry, tech=self.tech,
                bridge_distribution=self.bridge_distribution,
                open_distribution=self.open_distribution,
                extractor=self.extractor)
        return self._generator

    @property
    def diagnostician(self) -> LotDiagnostician:
        """The (cached) bitmap diagnostician."""
        if self._diagnostician is None:
            self._diagnostician = LotDiagnostician(tech=self.tech)
        return self._diagnostician

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def meta(self) -> dict[str, Any]:
        """The experiment fingerprint stored in checkpoints/journals.

        Execution knobs (workers, chunk size) are deliberately absent
        -- they change how the experiment runs, never what it computes
        -- but ``shard_devices`` is present: the checkpoint keys on
        shard unit ids, so resuming requires the same shard layout
        (results do not; see the shard-invariance tests).
        """
        return {
            "experiment": "streaming-veqtor4",
            "devices": self.plan.n_devices,
            "seed": self.plan.seed,
            "scheme": self.plan.scheme,
            "shard_devices": self.plan.shard_devices,
            "block_devices": self.plan.block_devices,
            "d0_per_cm2": self.density.d0_per_cm2,
            "bridge_fraction": self.density.bridge_fraction,
            "diagnose": self.diagnose,
        }

    # ------------------------------------------------------------------
    # Streaming generation
    # ------------------------------------------------------------------
    def iter_shard_chips(self, shard: ShardUnit) -> Iterator[VeqtorChip]:
        """Yield the shard's chips without materializing the shard.

        Under ``spawn``, only *defective* chips are yielded (clean
        devices are implied by ``shard.devices``); under ``legacy``
        every chip streams through in the original draw order.
        """
        if self.plan.scheme == "legacy":
            yield from self.generator.iter_chips()
            return
        for block_index, start, stop in self.plan.blocks_of(shard):
            yield from self._block_chips(block_index, start, stop)

    def _block_chips(self, block_index: int, start: int,
                     stop: int) -> Iterator[VeqtorChip]:
        """Vectorised draw of one RNG block's defective chips.

        The block substream consumes in a fixed order -- Poisson count
        matrix, kind uniforms, batched bridge draws, batched open draws
        -- so the block's chips are a pure function of
        ``(seed, block_index)`` regardless of shard layout or worker
        count.
        """
        seq = np.random.SeedSequence(entropy=self.plan.seed,
                                     spawn_key=(block_index,))
        rng = np.random.default_rng(seq)
        lam = self.density.defects_per_chip(self.geometry.array_area_um2())
        n = stop - start
        counts = rng.poisson(lam, size=(n, VeqtorChip.N_INSTANCES))
        total = int(counts.sum())
        if total == 0:
            return
        is_bridge = rng.random(total) < self.density.bridge_fraction
        n_bridges = int(is_bridge.sum())
        bridges = self.extractor.sample_batch(
            n_bridges, rng, DefectKind.BRIDGE,
            resistance_distribution=self.bridge_distribution)
        opens = self.extractor.sample_batch(
            total - n_bridges, rng, DefectKind.OPEN,
            resistance_distribution=self.open_distribution)
        per_chip = counts.sum(axis=1)
        rows = np.nonzero(per_chip)[0]
        cursor = bi = oi = 0
        for row in rows:
            chip = VeqtorChip(start + int(row))
            for instance in range(VeqtorChip.N_INSTANCES):
                for _ in range(int(counts[row, instance])):
                    if is_bridge[cursor]:
                        chip.add_defect(instance, bridges[bi])
                        bi += 1
                    else:
                        chip.add_defect(instance, opens[oi])
                        oi += 1
                    cursor += 1
            yield chip

    # ------------------------------------------------------------------
    # Executor integration
    # ------------------------------------------------------------------
    def unit_evaluator(self, retry: Any = None,
                       unit_deadline: float | None = None,
                       sleep: Callable[[float], None] = time.sleep,
                       clock: Callable[[], float] = time.monotonic,
                       ) -> "ShardEvaluator":
        """The evaluator factory :func:`make_evaluator` duck-types."""
        return ShardEvaluator(self, retry=retry,
                              unit_deadline=unit_deadline,
                              sleep=sleep, clock=clock)


class ShardEvaluator:
    """Evaluate shard units into accumulator payloads.

    The streaming counterpart of
    :class:`~repro.runner.evaluate.UnitEvaluator`: one lives in the
    serial runner, one per worker process in the pool, and the parent
    supervisor builds one for poison fallbacks.  ``evaluate`` returns a
    :class:`~repro.runner.evaluate.UnitOutcome` whose ``record`` is the
    shard's :meth:`ExperimentAccumulator.as_payload` dict.

    Args:
        campaign: The :class:`StreamingExperiment`.
        retry: Accepted for executor-interface parity; shard evaluation
            has no per-site retry loop (the classifier is
            deterministic), so it is unused.
        unit_deadline: Optional wall-clock budget per shard (seconds).
        sleep: Injectable sleep (interface parity).
        clock: Injectable monotonic clock for deadlines.
    """

    def __init__(self, campaign: StreamingExperiment, retry: Any = None,
                 unit_deadline: float | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if unit_deadline is not None and unit_deadline <= 0:
            raise ValueError("unit_deadline must be positive")
        self.campaign = campaign
        self.retry = retry
        self.unit_deadline = unit_deadline
        self.sleep = sleep
        self.clock = clock

    def evaluate(self, shard: ShardUnit) -> UnitOutcome:
        """Generate, classify and accumulate one shard.

        Raises:
            UnitDeadlineExceeded: the shard overran ``unit_deadline``.
        """
        engine = self.campaign
        classifier = engine.classifier
        # Chaos bookkeeping (duck-typed: absent outside chaos runs) --
        # the same unit-scoped snapshot protocol as UnitEvaluator, so
        # outcomes carry injector counter growth across the process
        # boundary.
        injector = getattr(engine.behavior, "injector", None)
        if injector is not None and hasattr(injector, "begin_unit"):
            injector.begin_unit(shard.unit_id)
        snapshot = (injector.counter_snapshot()
                    if injector is not None
                    and hasattr(injector, "counter_snapshot") else None)
        started = self.clock()
        acc = ExperimentAccumulator(devices=shard.devices)
        diagnostician = engine.diagnostician if engine.diagnose else None
        seen = 0
        for chip in engine.iter_shard_chips(shard):
            seen += 1
            record = classifier.classify_chip(chip)
            if record is None:
                continue
            acc.observe(record)
            if diagnostician is not None and record.interesting:
                device = diagnostician.diagnose_device(record)
                acc.observe_hints(device.hints)
            if (self.unit_deadline is not None
                    and self.clock() - started > self.unit_deadline):
                raise UnitDeadlineExceeded(
                    f"{shard} exceeded its {self.unit_deadline:g}s "
                    f"budget after {seen} chips; completed shards are "
                    "checkpointed -- fix the stall and resume")
        payload: Any = acc.as_payload()
        injections = (injector.counters_since(snapshot)
                      if snapshot is not None else {})
        return UnitOutcome(index=shard.index, unit_id=shard.unit_id,
                           record=payload, quarantine=[],
                           stats=RetryStats(), injections=injections)

    def poison_outcome(self, shard: ShardUnit, attempts: int,
                       error: str) -> UnitOutcome:
        """Synthesise the quarantine outcome of a poison shard.

        Called by the pool supervisor's last line of defence: the
        shard's devices are counted as ``errors`` (claiming nothing
        about their classification) and the ledger carries one
        whole-shard entry with the sentinel ``site_index == -1``.
        """
        acc = ExperimentAccumulator(devices=shard.devices,
                                    errors=shard.devices)
        payload: Any = acc.as_payload()
        entry = {
            "unit_id": shard.unit_id,
            "site_index": -1,
            "defect": "<entire shard>",
            "attempts": attempts,
            "error": error,
            "deadline_hit": False,
        }
        return UnitOutcome(index=shard.index, unit_id=shard.unit_id,
                           record=payload, quarantine=[entry],
                           stats=RetryStats())
