"""Streaming sharded experiment engine (10^6 -- 10^7 devices).

Map-reduce over the Veqtor4 virtual-silicon experiment: a
deterministic :class:`ShardPlan` splits the device space into
block-aligned shards with independent RNG substreams, each shard's
:class:`~repro.experiment.streaming.engine.ShardEvaluator` generates
only defective chips (vectorised per block) and folds classifications
into an :class:`ExperimentAccumulator`, and :class:`StreamingRunner`
merges shard payloads in plan order -- O(classes) memory end to end,
with checkpoint/resume, journals and the existing process-pool
executors underneath.  See ``docs/performance.md`` ("Streaming
million-device experiment") and ``EXPERIMENTS.md``.
"""

from repro.experiment.streaming.accumulator import ExperimentAccumulator
from repro.experiment.streaming.engine import (
    ShardEvaluator,
    StreamingExperiment,
)
from repro.experiment.streaming.plan import (
    DEFAULT_BLOCK_DEVICES,
    DEFAULT_SHARD_DEVICES,
    SCHEMES,
    ShardPlan,
    ShardUnit,
)
from repro.experiment.streaming.runner import StreamingResult, StreamingRunner

__all__ = [
    "DEFAULT_BLOCK_DEVICES",
    "DEFAULT_SHARD_DEVICES",
    "ExperimentAccumulator",
    "SCHEMES",
    "ShardEvaluator",
    "ShardPlan",
    "ShardUnit",
    "StreamingExperiment",
    "StreamingResult",
    "StreamingRunner",
]
