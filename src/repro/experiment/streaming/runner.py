"""Parent-side orchestration of the streaming experiment.

:class:`StreamingRunner` mirrors
:class:`~repro.runner.campaign.CampaignRunner`: shards dispatch through
the same serial / supervised-pool / plain-pool executors, completed
shards land in a :class:`~repro.runner.checkpoint.CampaignCheckpoint`
(payload = the shard's accumulator dict), and all observability happens
here, in shard-plan order, at the in-order effect point -- so journals
are byte-identical across worker counts and the reduce is
deterministic no matter which worker finished first.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.experiment.streaming.accumulator import ExperimentAccumulator
from repro.experiment.streaming.engine import StreamingExperiment
from repro.experiment.venn import VennCounts
from repro.experiment.classify import STRESS_NAMES
from repro.runner.checkpoint import CampaignCheckpoint
from repro.runner.evaluate import UnitOutcome
from repro.runner.retry import RetryPolicy


@dataclass
class StreamingResult:
    """Outcome of one streaming experiment run.

    Attributes:
        accumulator: The merged lot-level sufficient statistics.
        executed_shards: Shards evaluated this run.
        resumed_shards: Shards replayed from the checkpoint.
        quarantine: Whole-shard poison ledger entries.
        supervisor_stats: Pool-supervision counters (pool runs only).
        metrics: Metrics snapshot (journal runs only).
    """

    accumulator: ExperimentAccumulator
    executed_shards: int = 0
    resumed_shards: int = 0
    quarantine: list[dict[str, Any]] = field(default_factory=list)
    supervisor_stats: dict[str, Any] | None = None
    metrics: dict[str, Any] | None = None

    @property
    def venn(self) -> VennCounts:
        """The lot-level Venn regions."""
        return self.accumulator.venn

    def render(self) -> str:
        """Human-readable run summary."""
        acc = self.accumulator
        lines = [
            f"devices: {acc.devices}  defective: {acc.defective}  "
            f"standard fails: {acc.standard_fails}  "
            f"errors: {acc.errors}",
            self.venn.render(),
        ]
        for name in STRESS_NAMES:
            lines.append(f"  escape DPM ({name}): "
                         f"{acc.escape_dpm(name):.1f}")
        for condition, counts in sorted(acc.hint_counts.items()):
            lines.append(f"  hints at {condition}:")
            for value in sorted(counts):
                lines.append(f"    {value:>20}: {counts[value]}")
        return "\n".join(lines)


class StreamingRunner:
    """Execute (or resume) a sharded streaming experiment.

    Args:
        engine: The :class:`StreamingExperiment` to run.
        retry: Per-unit retry policy handed to the executors.
        checkpoint_path: Crash-safe progress file (optional).
        checkpoint_every: Completed shards per checkpoint write.
        unit_deadline: Optional per-shard wall-clock budget (seconds).
        workers: Process count (1 = serial).
        chunksize: Shards per pool dispatch (default: auto).
        supervise: Use the self-healing supervised pool (vs the plain
            executor) when ``workers > 1``.
        max_pool_rebuilds: Supervised-pool rebuild budget.
        chunk_deadline_factor: Supervised-pool chunk deadline factor.
        journal: Run-journal path or event bus (optional).
        fault_hook: Test-only hook threaded into checkpoint saves.
        sleep / clock: Injectable timers for the executors.
    """

    def __init__(self, engine: StreamingExperiment,
                 retry: RetryPolicy | None = None,
                 checkpoint_path: str | Path | None = None,
                 checkpoint_every: int = 8,
                 unit_deadline: float | None = None,
                 workers: int = 1,
                 chunksize: int | None = None,
                 supervise: bool = True,
                 max_pool_rebuilds: int = 8,
                 chunk_deadline_factor: float = 4.0,
                 journal: Any = None,
                 fault_hook: Callable[[str], None] | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.engine = engine
        self.retry = retry
        self.checkpoint_path = (Path(checkpoint_path)
                                if checkpoint_path is not None else None)
        self.checkpoint_every = checkpoint_every
        self.unit_deadline = unit_deadline
        self.workers = workers
        self.chunksize = chunksize
        self.supervise = supervise
        self.max_pool_rebuilds = max_pool_rebuilds
        self.chunk_deadline_factor = chunk_deadline_factor
        self.journal = journal
        self.fault_hook = fault_hook
        self.sleep = sleep
        self.clock = clock
        self._supervisor: Any = None

    # ------------------------------------------------------------------
    def _journal_bus(self) -> Any:
        """Resolve the ``journal`` argument to an event bus (or None)."""
        if self.journal is None:
            return None
        if isinstance(self.journal, (str, Path)):
            from repro.obs.bus import EventBus

            return EventBus(Path(self.journal))
        return self.journal

    def _outcomes(self, pending: list[Any], bus: Any = None,
                  metrics: Any = None) -> Iterator[UnitOutcome]:
        """Evaluate pending shards lazily: serial or across the pool."""
        if self.workers == 1:
            evaluator = self.engine.unit_evaluator(
                retry=self.retry, unit_deadline=self.unit_deadline,
                sleep=self.sleep, clock=self.clock)
            return (evaluator.evaluate(shard) for shard in pending)
        if self.supervise:
            from repro.perf.supervisor import SupervisedUnitExecutor

            supervisor = SupervisedUnitExecutor(
                self.engine, retry=self.retry,
                unit_deadline=self.unit_deadline,
                workers=self.workers, chunksize=self.chunksize,
                max_pool_rebuilds=self.max_pool_rebuilds,
                chunk_deadline_factor=self.chunk_deadline_factor,
                bus=bus, metrics=metrics,
                sleep=self.sleep, clock=self.clock)
            self._supervisor = supervisor
            return supervisor.run(pending)
        from repro.perf.executor import ParallelUnitExecutor

        executor = ParallelUnitExecutor(self.engine, retry=self.retry,
                                        unit_deadline=self.unit_deadline,
                                        workers=self.workers,
                                        chunksize=self.chunksize)
        return executor.run(pending)

    # ------------------------------------------------------------------
    def run(self) -> StreamingResult:
        """Run (or resume) the experiment and reduce in shard order.

        Completed shards are replayed from the checkpoint; the rest
        are evaluated serially or across the pool.  Merging, journal
        events and checkpoint writes always happen in shard-plan
        order, so every combination of {serial, parallel} x {fresh,
        resumed} yields an identical accumulator payload.
        """
        units = self.engine.plan.shards()
        meta = self.engine.meta()
        resuming = (self.checkpoint_path is not None
                    and self.checkpoint_path.exists())
        if resuming:
            ckpt = CampaignCheckpoint.load(self.checkpoint_path)
            ckpt.ensure_matches(meta)
        else:
            ckpt = CampaignCheckpoint(meta)
        bus = self._journal_bus()
        metrics: Any = None
        if bus is not None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
            bus.set_meta(meta)
            bus.emit("run.start", plan_units=len(units))
            if resuming:
                status = ckpt.status()
                bus.emit("checkpoint.resume",
                         completed_units=status["completed_units"],
                         recovered_from_temp=status[
                             "recovered_from_temp"])
        pending = [u for u in units if not ckpt.is_complete(u.unit_id)]
        outcomes = self._outcomes(pending, bus, metrics)
        total = ExperimentAccumulator()
        result = StreamingResult(accumulator=total,
                                 quarantine=list(ckpt.quarantine))
        dirty = 0
        processed = 0
        for unit in units:
            unit_id = unit.unit_id
            if ckpt.is_complete(unit_id):
                payload = ckpt.result_for(unit_id)
                result.resumed_shards += 1
                source = "checkpoint"
            else:
                outcome = next(outcomes)
                payload = outcome.record
                result.quarantine.extend(outcome.quarantine)
                result.executed_shards += 1
                source = "executed"
                ckpt.record_unit(unit_id, payload, outcome.quarantine)
                if bus is not None:
                    for entry in outcome.quarantine:
                        bus.emit("unit.quarantine", unit=unit_id,
                                 site_index=entry["site_index"],
                                 attempts=entry["attempts"],
                                 error=entry["error"])
                    metrics.inc("quarantine.sites",
                                len(outcome.quarantine))
            shard_acc = ExperimentAccumulator.from_payload(payload)
            total.merge(shard_acc)
            processed += 1
            if bus is not None:
                bus.emit("experiment.shard", shard=unit.index,
                         devices=shard_acc.devices,
                         defective=shard_acc.defective,
                         interesting=shard_acc.interesting,
                         source=source)
                metrics.inc(f"shards.{source}")
            if source == "checkpoint":
                continue
            dirty += 1
            if self.checkpoint_path is not None and (
                    dirty >= self.checkpoint_every):
                ckpt.save(self.checkpoint_path, fault_hook=self.fault_hook)
                dirty = 0
                if bus is not None:
                    bus.emit("checkpoint.save", completed_units=processed)
                    metrics.inc("checkpoint.saves")
                    bus.flush()
        if self.checkpoint_path is not None and dirty:
            ckpt.save(self.checkpoint_path, fault_hook=self.fault_hook)
            if bus is not None:
                bus.emit("checkpoint.save", completed_units=processed)
                metrics.inc("checkpoint.saves")
        if self._supervisor is not None:
            result.supervisor_stats = self._supervisor.stats.as_dict()
        if bus is not None:
            bus.emit("experiment.merge", shards=len(units),
                     devices=total.devices, defective=total.defective,
                     interesting=total.interesting,
                     standard_fails=total.standard_fails)
            bus.emit("run.done",
                     executed_units=result.executed_shards,
                     resumed_units=result.resumed_shards,
                     cached_units=0,
                     quarantined_sites=len(result.quarantine))
            result.metrics = metrics.snapshot()
            bus.flush()
        return result
