"""repro: Memory testing under different stress conditions.

A full reproduction of *"Memory Testing Under Different Stress
Conditions: An Industrial Evaluation"* (Majhi et al., DATE 2005) as a
Python library:

* :mod:`repro.circuit` -- compact-device Spice-like simulator,
* :mod:`repro.memory` -- 6T-cell SRAM model with electrical periphery,
* :mod:`repro.march` -- march test engine (MATS++ .. MOVI, the 11N test),
* :mod:`repro.faults` -- classical functional fault models + simulator,
* :mod:`repro.defects` -- resistive bridge/open models with calibrated
  stress-condition behaviour,
* :mod:`repro.ifa` -- synthetic layout + critical-area extraction,
* :mod:`repro.core` -- the fault-coverage & DPM estimator (the paper's
  contribution),
* :mod:`repro.tester` -- virtual ATE, shmoo plots, bitmap diagnosis,
* :mod:`repro.experiment` -- the simulated 11k-device silicon study,
* :mod:`repro.analysis` -- table/figure renderers.

Quickstart::

    from repro import MemoryTestFlow, MemoryGeometry
    report = MemoryTestFlow(MemoryGeometry(512, 16, 32)).run()
    print(report.bridge_report.by_condition("VLV").defect_coverage)
"""

from repro.bist import BistEngine, ResponseMode
from repro.circuit.technology import CMOS013, CMOS018, Technology
from repro.core.database import CoverageDatabase
from repro.core.estimator import EstimatorReport, FaultCoverageEstimator
from repro.core.database import load_default_database
from repro.core.flow import FlowResult, MemoryTestFlow
from repro.core.testplan import JointCoverageTable, TestPlanOptimizer
from repro.defects.behavior import BehaviorParams, DefectBehaviorModel
from repro.defects.models import BridgeSite, Defect, DefectKind, OpenSite
from repro.experiment.classify import StressClassifier
from repro.experiment.population import PopulationGenerator, PopulationSpec
from repro.experiment.venn import PAPER_VENN, VennCounts
from repro.ifa.flow import IfaCampaign
from repro.march.library import STANDARD_TESTS, TEST_11N, get_test
from repro.march.test import MarchTest
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry
from repro.memory.sram import Sram
from repro.stress import StressCondition, production_conditions
from repro.tester.ate import VirtualTester
from repro.tester.iddq import IddqTester
from repro.tester.movi import MoviExecutor
from repro.tester.shmoo import ShmooRunner

__version__ = "1.0.0"

__all__ = [
    "BehaviorParams",
    "BistEngine",
    "BridgeSite",
    "CMOS013",
    "CMOS018",
    "CoverageDatabase",
    "Defect",
    "DefectBehaviorModel",
    "DefectKind",
    "EstimatorReport",
    "FaultCoverageEstimator",
    "FlowResult",
    "IddqTester",
    "IfaCampaign",
    "JointCoverageTable",
    "MarchTest",
    "MemoryGeometry",
    "MemoryTestFlow",
    "MoviExecutor",
    "OpenSite",
    "PAPER_VENN",
    "PopulationGenerator",
    "PopulationSpec",
    "STANDARD_TESTS",
    "ShmooRunner",
    "Sram",
    "StressClassifier",
    "StressCondition",
    "TEST_11N",
    "TestPlanOptimizer",
    "ResponseMode",
    "Technology",
    "VEQTOR4_INSTANCE",
    "VennCounts",
    "VirtualTester",
    "__version__",
    "get_test",
    "load_default_database",
    "production_conditions",
]
