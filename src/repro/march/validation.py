"""Structural validation of march tests.

Production test programs are validated before silicon ever sees them;
this module provides the equivalent static checks for march tests built
or parsed by users:

* read-expectation consistency against an ideal memory (whole-test walk),
* initialisation (the test must not read an undefined array),
* per-element internal consistency,
* detection-capability lower bounds (a test with no reads detects
  nothing; a test without both 0-reads and 1-reads cannot detect both
  stuck-at polarities).

:func:`validate` returns a list of :class:`Issue` records rather than
raising, so callers can render all problems at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.march.pause import PauseElement
from repro.march.test import MarchTest


class Severity(Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    """One validation finding."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


def validate(test: MarchTest) -> list[Issue]:
    """Run all static checks on a march test."""
    issues: list[Issue] = []
    issues.extend(_check_initialisation(test))
    issues.extend(_check_consistency(test))
    issues.extend(_check_detection_capability(test))
    return issues


def is_valid(test: MarchTest) -> bool:
    """True when :func:`validate` reports no errors (warnings allowed)."""
    return not any(i.severity is Severity.ERROR for i in validate(test))


def assert_valid(test: MarchTest) -> None:
    """Raise ``ValueError`` listing every error-severity issue."""
    errors = [i for i in validate(test) if i.severity is Severity.ERROR]
    if errors:
        details = "; ".join(str(i) for i in errors)
        raise ValueError(f"march test {test.name!r} is invalid: {details}")


def _check_initialisation(test: MarchTest) -> list[Issue]:
    first = next((el for el in test.elements
                  if not isinstance(el, PauseElement)), None)
    if first is None:
        return [Issue(Severity.ERROR, "no-operations",
                      "test contains only pause elements")]
    if first.ops[0].is_read:
        return [Issue(
            Severity.ERROR,
            "uninitialised-read",
            f"first element {first.notation} reads before any write; the "
            "array content is undefined at power-up",
        )]
    return []


def _check_consistency(test: MarchTest) -> list[Issue]:
    issues: list[Issue] = []
    state: int | None = None
    for idx, element in enumerate(test.elements):
        if not element.is_consistent():
            issues.append(Issue(
                Severity.ERROR,
                "element-inconsistent",
                f"element {idx} {element.notation} reads a value that "
                "contradicts its own preceding write",
            ))
        entry = element.entry_state()
        if entry is not None and state is not None and entry != state:
            issues.append(Issue(
                Severity.ERROR,
                "entry-state-mismatch",
                f"element {idx} {element.notation} expects cells = {entry} "
                f"but the previous elements leave cells = {state}",
            ))
        final = element.final_write_value()
        if final is not None:
            state = final
    return issues


def _check_detection_capability(test: MarchTest) -> list[Issue]:
    issues: list[Issue] = []
    if test.read_count() == 0:
        issues.append(Issue(
            Severity.ERROR,
            "no-reads",
            "test performs no reads and therefore cannot detect anything",
        ))
        return issues
    read_values = {op.value for el in test.elements for op in el.reads}
    if 0 not in read_values:
        issues.append(Issue(
            Severity.WARNING,
            "no-read0",
            "test never reads 0: stuck-at-1 cells escape",
        ))
    if 1 not in read_values:
        issues.append(Issue(
            Severity.WARNING,
            "no-read1",
            "test never reads 1: stuck-at-0 cells escape",
        ))
    if test.transition_count() < 2:
        issues.append(Issue(
            Severity.WARNING,
            "weak-transitions",
            "test exercises fewer than two write transitions per cell; "
            "transition faults may escape",
        ))
    orders = {el.order for el in test.elements
              if not isinstance(el, PauseElement)}
    from repro.march.element import AddressOrder

    if AddressOrder.UP not in orders or AddressOrder.DOWN not in orders:
        issues.append(Issue(
            Severity.WARNING,
            "single-direction",
            "test marches in only one address direction; address-decoder "
            "and inter-cell coupling coverage is reduced",
        ))
    return issues
