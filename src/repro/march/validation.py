"""Structural validation of march tests (compatibility front door).

Production test programs are validated before silicon ever sees them;
this module provides the equivalent static checks for march tests built
or parsed by users.  Since the introduction of :mod:`repro.lint` the
checks themselves live in the ``march`` rule pack
(:mod:`repro.lint.rules_march`, rules ``MARCH001``..``MARCH009`` plus
newer ones); :func:`validate` / :func:`is_valid` / :func:`assert_valid`
remain as thin wrappers that run the pack and translate the migrated
rules back to the original issue codes, in the original order -- callers
of the historical API see identical results.

A test with zero elements (impossible via the :class:`MarchTest`
constructor, but reachable through hand-built or deserialised objects)
reports an error -- never an empty issue list.

:func:`validate` returns a list of :class:`Issue` records rather than
raising, so callers can render all problems at once.  For the full rule
set (including info-severity findings and the newer rules), use
:func:`repro.lint.lint_march` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.march.test import MarchTest


class Severity(Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    """One validation finding."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


#: Sort phase replicating the historical check order: initialisation
#: checks first, then the per-element consistency walk (interleaved by
#: element index, inconsistency before entry mismatch), then the
#: detection-capability checks in their original sequence.
_PHASES = {
    "MARCH001": 0, "MARCH002": 0,
    "MARCH003": 1, "MARCH004": 1,
    "MARCH005": 2, "MARCH006": 2, "MARCH007": 2,
    "MARCH008": 2, "MARCH009": 2,
}


def validate(test: MarchTest) -> list[Issue]:
    """Run all static checks on a march test (legacy issue format)."""
    from repro.lint import Severity as LintSeverity
    from repro.lint import lint_march
    from repro.lint.rules_march import LEGACY_CODES

    report = lint_march(test)
    legacy = [i for i in report.issues if i.rule_id in LEGACY_CODES]

    def order(issue) -> tuple[int, int, str]:
        phase = _PHASES[issue.rule_id]
        index = issue.index if phase == 1 and issue.index is not None else -1
        return (phase, index, issue.rule_id)

    return [
        Issue(
            Severity.ERROR if i.severity is LintSeverity.ERROR
            else Severity.WARNING,
            LEGACY_CODES[i.rule_id],
            i.message,
        )
        for i in sorted(legacy, key=order)
    ]


def is_valid(test: MarchTest) -> bool:
    """True when :func:`validate` reports no errors (warnings allowed)."""
    return not any(i.severity is Severity.ERROR for i in validate(test))


def assert_valid(test: MarchTest) -> None:
    """Raise ``ValueError`` listing every error-severity issue."""
    errors = [i for i in validate(test) if i.severity is Severity.ERROR]
    if errors:
        details = "; ".join(str(i) for i in errors)
        raise ValueError(f"march test {test.name!r} is invalid: {details}")
