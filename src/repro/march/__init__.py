"""March test engine: notation, library, sequencing and validation.

The paper tests its SRAMs with a family of march tests (an 11N production
test derived from MATS++, March C- and MOVI).  This package provides the
full machinery: operation/element/test algebra with the standard textual
notation, a library of published march tests, the MOVI address-rotation
procedure, a per-clock-cycle sequencer and static validation.
"""

from repro.march.element import AddressOrder, MarchElement
from repro.march.library import (
    MARCH_A,
    MARCH_B,
    MARCH_CM,
    MARCH_CP,
    MARCH_G,
    MARCH_G_DEL,
    MARCH_RAW,
    MARCH_LR,
    MARCH_SR,
    MARCH_SS,
    MARCH_U,
    MARCH_X,
    MARCH_Y,
    MATS,
    MATS_PLUS,
    MATS_PLUS_PLUS,
    PMOVI,
    STANDARD_TESTS,
    TEST_11N,
    get_test,
    movi_schedule,
)
from repro.march.ops import R0, R1, W0, W1, Op, OpKind
from repro.march.pause import PauseElement
from repro.march.sequencer import (
    CycleOp,
    DataBackground,
    MarchSequencer,
    background_bit,
    bit_rotation_map,
    movi_runs,
)
from repro.march.compare import (
    TestScore,
    efficiency_frontier,
    render_scores,
    score_tests,
)
from repro.march.synthesis import (
    MarchSynthesizer,
    SynthesisResult,
    candidate_elements,
    classical_universe,
)
from repro.march.test import MarchTest
from repro.march.validation import Issue, Severity, assert_valid, is_valid, validate

__all__ = [
    "AddressOrder",
    "CycleOp",
    "DataBackground",
    "Issue",
    "MARCH_A",
    "MARCH_B",
    "MARCH_CM",
    "MARCH_CP",
    "MARCH_G",
    "MARCH_G_DEL",
    "MARCH_RAW",
    "MARCH_LR",
    "MARCH_SR",
    "MARCH_SS",
    "MARCH_U",
    "MARCH_X",
    "MARCH_Y",
    "MATS",
    "MATS_PLUS",
    "MATS_PLUS_PLUS",
    "MarchElement",
    "MarchSequencer",
    "MarchSynthesizer",
    "MarchTest",
    "Op",
    "OpKind",
    "PauseElement",
    "PMOVI",
    "R0",
    "R1",
    "STANDARD_TESTS",
    "Severity",
    "TEST_11N",
    "W0",
    "W1",
    "SynthesisResult",
    "TestScore",
    "assert_valid",
    "background_bit",
    "candidate_elements",
    "classical_universe",
    "efficiency_frontier",
    "render_scores",
    "score_tests",
    "bit_rotation_map",
    "get_test",
    "is_valid",
    "movi_runs",
    "movi_schedule",
    "validate",
]
