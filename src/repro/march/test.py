"""March test container: a named sequence of march elements.

A :class:`MarchTest` knows its complexity (the ``kN`` factor test
engineers quote -- the paper's production test is an "11N March test"),
can verify its own read-expectation consistency against an ideal memory,
and serialises to/from the standard textual notation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.march.element import AddressOrder, MarchElement
from repro.march.ops import Op
from repro.march.pause import PauseElement


@dataclass(frozen=True)
class MarchTest:
    """A complete march test.

    Attributes:
        name: Identifier, e.g. ``"March C-"``.
        elements: Ordered march elements.
        description: Optional provenance/notes.
    """

    name: str
    elements: tuple[MarchElement, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("march test must contain at least one element")
        object.__setattr__(self, "elements", tuple(self.elements))

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    @property
    def complexity(self) -> int:
        """The k in the test's k*N operation count (11 for the 11N test)."""
        return sum(len(el) for el in self.elements)

    def operation_count(self, n_cells: int) -> int:
        """Total operations applied to an ``n_cells`` memory."""
        return self.complexity * n_cells

    @property
    def notation(self) -> str:
        return "; ".join(el.notation for el in self.elements)

    def __str__(self) -> str:
        return f"{self.name}: {{{self.notation}}}"

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------
    def is_consistent(self) -> bool:
        """Whole-test read-expectation consistency on a fault-free memory.

        Simulates the element sequence on an abstract all-cells-same-state
        memory: every element's entry requirement must match the state
        left by its predecessors, and every element must be internally
        consistent.  The first element must not begin with a read of an
        undefined state (i.e. the test must initialise the array).
        """
        state: int | None = None  # uniform cell state; None = unknown
        for element in self.elements:
            entry = element.entry_state()
            if entry is not None:
                if state is None or entry != state:
                    return False
            if not element.is_consistent():
                return False
            final = element.final_write_value()
            if final is not None:
                state = final
        return True

    def read_count(self) -> int:
        """Reads per cell (each is a detection opportunity)."""
        return sum(len(el.reads) for el in self.elements)

    def write_count(self) -> int:
        return sum(len(el.writes) for el in self.elements)

    def transition_count(self) -> int:
        """Number of per-cell up/down state transitions the test exercises
        (w1 after state 0 and w0 after state 1), a coarse indicator of
        transition-fault coverage."""
        state: int | None = None
        transitions = 0
        for element in self.elements:
            for op in element.ops:
                if op.is_write:
                    if state is not None and op.value != state:
                        transitions += 1
                    state = op.value
        return transitions

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    @staticmethod
    def parse(name: str, text: str, description: str = "") -> "MarchTest":
        """Parse notation like ``'*(w0); ^(r0,w1); Del(50); v(r1,w0)'``."""
        elements = []
        for tok in text.split(";"):
            tok = tok.strip()
            if not tok:
                continue
            if tok.startswith("Del("):
                elements.append(PauseElement.parse(tok))
            else:
                elements.append(MarchElement.parse(tok))
        return MarchTest(name, tuple(elements), description)

    def with_inverted_data(self, name_suffix: str = " (inv)") -> "MarchTest":
        """The test run on the complemented data background."""
        return MarchTest(
            self.name + name_suffix,
            tuple(el if isinstance(el, PauseElement) else el.inverted_data()
                  for el in self.elements),
            self.description,
        )
