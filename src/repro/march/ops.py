"""March operation primitives.

A march test is a sequence of march elements; each element applies a
fixed list of operations to every address in a given order.  The
operation alphabet used by the paper's tests (MATS++, March C-, MOVI and
the 11N test) is ``{w0, w1, r0, r1}``: write-zero, write-one, read-expect-
zero, read-expect-one.

Operations are value-parameterised so data backgrounds other than
solid 0/1 (checkerboard, row/column stripes) can be expressed: the data
bit stored in an :class:`Op` is relative to the background -- the
sequencer resolves the physical value per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class OpKind(Enum):
    """Whether an operation writes or reads the addressed cell."""

    READ = "r"
    WRITE = "w"


@dataclass(frozen=True)
class Op:
    """One read or write operation within a march element.

    Attributes:
        kind: Read or write.
        value: The data bit -- for a write, the value stored; for a read,
            the value expected.  Expressed relative to the data
            background (0 = background, 1 = inverted background).
    """

    kind: OpKind
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"op value must be 0 or 1, got {self.value}")

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    def inverted(self) -> "Op":
        """The same operation with the opposite data value."""
        return Op(self.kind, 1 - self.value)

    @property
    def notation(self) -> str:
        return f"{self.kind.value}{self.value}"

    def __str__(self) -> str:
        return self.notation

    @staticmethod
    def parse(text: str) -> "Op":
        """Parse ``'r0' | 'r1' | 'w0' | 'w1'`` (case-insensitive)."""
        text = text.strip().lower()
        if len(text) != 2 or text[0] not in "rw" or text[1] not in "01":
            raise ValueError(f"cannot parse march operation: {text!r}")
        return Op(OpKind(text[0]), int(text[1]))


# Convenient singletons matching the paper's notation (R0, W1, ...).
R0 = Op(OpKind.READ, 0)
R1 = Op(OpKind.READ, 1)
W0 = Op(OpKind.WRITE, 0)
W1 = Op(OpKind.WRITE, 1)
