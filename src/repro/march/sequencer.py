"""March test sequencer: from abstract notation to per-cycle operations.

The paper's experimental flow converts the family of march tests into
"analogue input stimulus" for the simulator and into tester patterns for
the ATE.  :class:`MarchSequencer` is the shared front half of both paths:
it unrolls a :class:`~repro.march.test.MarchTest` over an address space
into a deterministic stream of :class:`CycleOp` records (one per clock
cycle), resolving

* address order (up/down, with an arbitrary address-mapping permutation
  such as fast-column vs fast-row counting or MOVI bit rotation), and
* data background (solid, checkerboard, row/column stripes), turning the
  background-relative op values into physical cell values.

Downstream consumers: the functional fault simulator
(:mod:`repro.faults.simulator`), the electrical SRAM model
(:mod:`repro.memory.sram`) and the virtual tester (:mod:`repro.tester`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from enum import Enum

from repro.march.element import AddressOrder, MarchElement
from repro.march.ops import Op
from repro.march.pause import PauseElement
from repro.march.test import MarchTest


class DataBackground(Enum):
    """Physical data pattern that op value 0 maps onto."""

    SOLID = "solid"
    CHECKERBOARD = "checkerboard"
    ROW_STRIPES = "row_stripes"
    COLUMN_STRIPES = "column_stripes"


@dataclass(frozen=True)
class CycleOp:
    """One memory operation at one clock cycle.

    Attributes:
        cycle: Zero-based clock-cycle index within the whole test.
        element_index: Which march element this op belongs to.
        op_index: Position of the op within its element.
        address: Logical cell address.
        op: The background-relative operation.
        value: The physical data value after background resolution (the
            bit actually written, or expected on read).
    """

    cycle: int
    element_index: int
    op_index: int
    address: int
    op: Op
    value: int


def background_bit(background: DataBackground, address: int,
                   columns: int) -> int:
    """Physical value of logical 0 at an address for a data background.

    ``columns`` is the number of cells per row in the topological layout,
    needed for the two-dimensional patterns.
    """
    row, col = divmod(address, columns)
    if background is DataBackground.SOLID:
        return 0
    if background is DataBackground.CHECKERBOARD:
        return (row + col) % 2
    if background is DataBackground.ROW_STRIPES:
        return row % 2
    return col % 2


class MarchSequencer:
    """Unrolls march tests into per-cycle operation streams.

    Args:
        n_addresses: Size of the address space.
        columns: Cells per topological row (for 2-D data backgrounds);
            defaults to the full address space (one row).
        address_map: Optional permutation applied to the linear counting
            sequence -- index in [0, n) -> physical address.  Used for
            address scrambling and MOVI bit rotation.  Must be a bijection
            on range(n_addresses).
    """

    def __init__(
        self,
        n_addresses: int,
        columns: int | None = None,
        address_map: Callable[[int], int] | None = None,
    ) -> None:
        if n_addresses <= 0:
            raise ValueError("n_addresses must be positive")
        self.n_addresses = n_addresses
        self.columns = columns if columns is not None else n_addresses
        if self.columns <= 0:
            raise ValueError("columns must be positive")
        self.address_map = address_map

    # ------------------------------------------------------------------
    def addresses(self, order: AddressOrder) -> Iterator[int]:
        """Physical address sequence for one march element."""
        seq: Iterator[int] = iter(range(self.n_addresses))
        if order is AddressOrder.DOWN:
            seq = iter(range(self.n_addresses - 1, -1, -1))
        if self.address_map is None:
            return seq
        return (self.address_map(i) for i in seq)

    def run(
        self,
        test: MarchTest,
        background: DataBackground = DataBackground.SOLID,
    ) -> Iterator[CycleOp]:
        """Yield the full cycle stream for a march test.

        The stream is deterministic: cycle indices are consecutive from 0
        and the total length is ``test.complexity * n_addresses``.
        """
        cycle = 0
        for ei, element in enumerate(test.elements):
            if isinstance(element, PauseElement):
                # Idle: time passes, no operations (retention stress).
                cycle += element.cycles
                continue
            for address in self.addresses(element.order):
                bg = background_bit(background, address, self.columns)
                for oi, op in enumerate(element.ops):
                    yield CycleOp(
                        cycle=cycle,
                        element_index=ei,
                        op_index=oi,
                        address=address,
                        op=op,
                        value=op.value ^ bg,
                    )
                    cycle += 1

    def cycle_count(self, test: MarchTest) -> int:
        pauses = sum(el.cycles for el in test.elements
                     if isinstance(el, PauseElement))
        return test.complexity * self.n_addresses + pauses


def bit_rotation_map(address_bits: int, fast_bit: int) -> Callable[[int], int]:
    """Address permutation making ``fast_bit`` the fastest-toggling bit.

    This is the address transformation behind the MOVI procedure: in run
    *k* address bit *k* must be the fastest-toggling bit, exercising the
    address-transition pairs where bit *k* flips on every access -- the
    worst case for the corresponding decoder path.

    The permutation rotates the counter word left by ``fast_bit``
    positions, so counter bit 0 (which toggles on every increment) lands
    on address bit ``fast_bit``.
    """
    if address_bits <= 0:
        raise ValueError("address_bits must be positive")
    if not 0 <= fast_bit < address_bits:
        raise ValueError(f"fast_bit out of range [0, {address_bits})")
    mask = (1 << address_bits) - 1

    def mapper(index: int) -> int:
        if not 0 <= index <= mask:
            raise ValueError(f"address index {index} out of range")
        rot = fast_bit
        return ((index << rot) | (index >> (address_bits - rot))) & mask

    return mapper if fast_bit else (lambda index: index)


def movi_runs(
    test: MarchTest,
    address_bits: int,
    columns: int | None = None,
    background: DataBackground = DataBackground.SOLID,
) -> Iterator[tuple[int, Iterator[CycleOp]]]:
    """Generate the MOVI run family for a base march test.

    Yields ``(fast_bit, cycle_stream)`` pairs, one per address bit.  The
    full MOVI procedure multiplies the base test complexity by the number
    of address bits, which is why the paper runs it only under selected
    stress conditions.
    """
    n = 1 << address_bits
    for fast_bit in range(address_bits):
        seq = MarchSequencer(
            n, columns=columns, address_map=bit_rotation_map(address_bits, fast_bit)
        )
        yield fast_bit, seq.run(test, background)
