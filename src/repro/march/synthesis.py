"""March test synthesis: search for new algorithms against a fault set.

The paper closes with: "As continuation of this research, we would like
to explore new test algorithms for targeting the soft defects."  This
module implements that continuation as a greedy set-cover synthesiser:

* a candidate pool of march elements (all internally consistent
  read/write sequences up to a length bound, in both address orders,
  compatible with the array state the partial test leaves behind);
* a greedy loop appending whichever candidate detects the most
  still-undetected faults per added operation;
* a minimisation pass dropping elements that became redundant.

Fault universes are supplied as factories so the synthesiser targets
anything the simulator can run: classical classes from
:mod:`repro.faults.coverage`, dynamic faults, address-decoder delay
faults, or behavioural renderings of resistive defects at a stress
condition.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.faults.models import FunctionalFault
from repro.faults.simulator import FunctionalFaultSimulator
from repro.march.element import AddressOrder, MarchElement
from repro.march.ops import Op, OpKind
from repro.march.test import MarchTest

#: A fault factory: builds a fresh fault instance (simulation mutates
#: internal state, so every evaluation needs its own copy).
FaultFactory = Callable[[], FunctionalFault]


def candidate_elements(entry_state: int | None,
                       max_ops: int = 3) -> list[MarchElement]:
    """All useful march elements compatible with an entry state.

    Enumerates internally consistent op sequences up to ``max_ops`` whose
    leading reads match ``entry_state`` (``None`` = unknown array: the
    element must start with a write), in both deterministic address
    orders.
    """
    alphabet = [Op(OpKind.READ, 0), Op(OpKind.READ, 1),
                Op(OpKind.WRITE, 0), Op(OpKind.WRITE, 1)]
    sequences: list[tuple[Op, ...]] = []
    for length in range(1, max_ops + 1):
        for ops in itertools.product(alphabet, repeat=length):
            if _sequence_ok(ops, entry_state):
                sequences.append(ops)
    out = []
    for ops in sequences:
        for order in (AddressOrder.UP, AddressOrder.DOWN):
            out.append(MarchElement(order, ops))
    return out


def _sequence_ok(ops: tuple[Op, ...], entry_state: int | None) -> bool:
    """Internal consistency + entry-state compatibility + usefulness."""
    state = entry_state
    for op in ops:
        if op.is_read:
            if state is None or op.value != state:
                return False
        else:
            state = op.value
    # Reject no-ops: an element should read or change the state.
    if all(op.is_write for op in ops) and state == entry_state:
        return False
    return True


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run.

    Attributes:
        test: The synthesised march test.
        detected: Number of target faults the test detects.
        total: Target universe size.
        history: Per-round log ``(element notation, newly detected)``.
    """

    test: MarchTest
    detected: int
    total: int
    history: list[tuple[str, int]] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        return self.detected / self.total if self.total else 1.0


class MarchSynthesizer:
    """Greedy march test synthesis against a fault universe.

    Args:
        n_cells: Memory size used for evaluation (8-16 is enough for the
            classical fault classes; use more when targeting
            address-bit-dependent faults).
        max_ops_per_element: Candidate element length bound.
        max_elements: Hard cap on synthesised test length.
    """

    def __init__(self, n_cells: int = 8, max_ops_per_element: int = 3,
                 max_elements: int = 8) -> None:
        if n_cells < 2:
            raise ValueError("n_cells must be at least 2")
        self.n_cells = n_cells
        self.max_ops_per_element = max_ops_per_element
        self.max_elements = max_elements
        self._sim = FunctionalFaultSimulator(n_cells)

    # ------------------------------------------------------------------
    def _detects(self, elements: Sequence[MarchElement],
                 factory: FaultFactory) -> bool:
        test = MarchTest("candidate", tuple(elements))
        return self._sim.detects(test, factory())

    def synthesise(self, factories: Sequence[FaultFactory],
                   name: str = "Synth") -> SynthesisResult:
        """Build a test covering as much of the fault universe as the
        search can reach.

        Greedy loop: each round evaluates every compatible candidate
        element against the still-undetected faults and appends the one
        with the best (newly detected / ops) ratio; ties prefer shorter
        elements.  When no candidate detects anything the loop seeds a
        state-setting element (multi-element sensitising sequences, e.g.
        dynamic faults, need an initialisation that detects nothing by
        itself).  Stops at full coverage, exhausted seeds, or the
        element cap.
        """
        if not factories:
            raise ValueError("fault universe must not be empty")
        elements: list[MarchElement] = []
        undetected = list(range(len(factories)))
        exit_state: int | None = None
        history: list[tuple[str, int]] = []
        seeds_available = [0, 1]

        while undetected and len(elements) < self.max_elements:
            best = None  # (score, element, newly_detected_ids)
            for cand in candidate_elements(exit_state,
                                           self.max_ops_per_element):
                trial = elements + [cand]
                newly = [
                    i for i in undetected
                    if self._detects(trial, factories[i])
                ]
                if not newly:
                    continue
                score = (len(newly) / len(cand), -len(cand))
                if best is None or score > best[0]:
                    best = (score, cand, newly)
            if best is None:
                seed_state = next(
                    (s for s in seeds_available if s != exit_state), None)
                if seed_state is None:
                    break
                seeds_available.remove(seed_state)
                seed = MarchElement(
                    AddressOrder.ANY, (Op(OpKind.WRITE, seed_state),))
                elements.append(seed)
                history.append((seed.notation, 0))
                exit_state = seed_state
                continue
            _, element, newly = best
            elements.append(element)
            history.append((element.notation, len(newly)))
            undetected = [i for i in undetected if i not in set(newly)]
            final = element.final_write_value()
            if final is not None:
                exit_state = final

        test = MarchTest(name, tuple(elements)) if elements else MarchTest(
            name, (MarchElement(AddressOrder.ANY,
                                (Op(OpKind.WRITE, 0),)),))
        detected = len(factories) - len(undetected)
        return SynthesisResult(test, detected, len(factories), history)

    # ------------------------------------------------------------------
    def minimise(self, test: MarchTest,
                 factories: Sequence[FaultFactory]) -> MarchTest:
        """Drop elements that do not reduce coverage (reverse greedy).

        Keeps the test consistent: an element is only removable when the
        remainder still chains entry states correctly.
        """
        elements = list(test.elements)
        baseline = self._coverage_count(elements, factories)
        changed = True
        while changed and len(elements) > 1:
            changed = False
            for i in range(len(elements) - 1, -1, -1):
                trial = elements[:i] + elements[i + 1:]
                if not MarchTest("t", tuple(trial)).is_consistent():
                    continue
                if self._coverage_count(trial, factories) >= baseline:
                    elements = trial
                    changed = True
                    break
        return MarchTest(test.name + " (min)", tuple(elements),
                         test.description)

    def _coverage_count(self, elements: Sequence[MarchElement],
                        factories: Sequence[FaultFactory]) -> int:
        return sum(1 for f in factories if self._detects(elements, f))


def classical_universe(n_cells: int = 8,
                       classes: Sequence[str] = ("SAF", "TF", "CFin"),
                       ) -> list[FaultFactory]:
    """Fault factories for the classical classes (for synthesis)."""
    from repro.faults.coverage import FAULT_CLASS_GENERATORS

    factories: list[FaultFactory] = []
    for cls in classes:
        generator = FAULT_CLASS_GENERATORS[cls]
        count = sum(1 for _ in generator(n_cells))
        for index in range(count):
            def make(generator=generator, index=index) -> FunctionalFault:
                return next(itertools.islice(generator(n_cells), index,
                                             index + 1))
            factories.append(make)
    return factories
