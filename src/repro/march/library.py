"""Library of standard march tests.

All tests are taken from the published literature (van de Goor, "Testing
Semiconductor Memories", 1998; Adams, "High Performance Memory Testing",
2002) plus the paper's production test:

* :data:`TEST_11N` -- the paper's "11N March test, a variation of MATS++,
  March C- and MOVI" (Section 2).  Its element set is reconstructed from
  the bitmap evidence in Sections 4.1/4.2, which names the elements
  ``{R0W1}``, ``{R1W0R0}`` and ``{R0W1R1}``; together with an
  initialisation and a descending cleanup pass this yields exactly 11N:

      ⇕(w0); ⇑(r0,w1); ⇑(r1,w0,r0); ⇓(r0,w1,r1); ⇓(r1,w0)

* The MOVI procedure [de Jonge & Smeulders 1976] reruns a base march test
  once per address bit with that bit toggling fastest; :func:`movi_schedule`
  generates the address-bit schedule used by the sequencer.
"""

from __future__ import annotations

from repro.march.element import AddressOrder, MarchElement
from repro.march.ops import R0, R1, W0, W1
from repro.march.pause import PauseElement
from repro.march.test import MarchTest

_UP = AddressOrder.UP
_DOWN = AddressOrder.DOWN
_ANY = AddressOrder.ANY


def _el(order: AddressOrder, *ops) -> MarchElement:
    return MarchElement(order, tuple(ops))


#: MATS: 4N, detects stuck-at faults only.
MATS = MarchTest(
    "MATS",
    (_el(_ANY, W0), _el(_ANY, R0, W1), _el(_ANY, R1)),
    "Modified Algorithmic Test Sequence; SAF coverage [Nair 79].",
)

#: MATS+: 5N, SAF + AF coverage.
MATS_PLUS = MarchTest(
    "MATS+",
    (_el(_ANY, W0), _el(_UP, R0, W1), _el(_DOWN, R1, W0)),
    "MATS+ [Abadir 83]; address decoder + stuck-at faults.",
)

#: MATS++: 6N, SAF + AF + TF coverage; one of the three bases of the
#: paper's 11N test.
MATS_PLUS_PLUS = MarchTest(
    "MATS++",
    (_el(_ANY, W0), _el(_UP, R0, W1), _el(_DOWN, R1, W0, R0)),
    "MATS++ [Breuer & Friedman]; adds transition-fault coverage.",
)

#: March X: 6N, unlinked inversion coupling faults.
MARCH_X = MarchTest(
    "March X",
    (
        _el(_ANY, W0),
        _el(_UP, R0, W1),
        _el(_DOWN, R1, W0),
        _el(_ANY, R0),
    ),
    "March X; CFin coverage.",
)

#: March Y: 8N, March X plus linked transition faults.
MARCH_Y = MarchTest(
    "March Y",
    (
        _el(_ANY, W0),
        _el(_UP, R0, W1, R1),
        _el(_DOWN, R1, W0, R0),
        _el(_ANY, R0),
    ),
    "March Y; TF linked with CFin.",
)

#: March C-: 10N, the workhorse for unlinked coupling faults; one of the
#: three bases of the paper's 11N test.
MARCH_CM = MarchTest(
    "March C-",
    (
        _el(_ANY, W0),
        _el(_UP, R0, W1),
        _el(_UP, R1, W0),
        _el(_DOWN, R0, W1),
        _el(_DOWN, R1, W0),
        _el(_ANY, R0),
    ),
    "March C- [Marinescu 82]; complete unlinked CF coverage.",
)

#: March C+: 14N, March C- with read-after-write verification.
MARCH_CP = MarchTest(
    "March C+",
    (
        _el(_ANY, W0),
        _el(_UP, R0, W1, R1),
        _el(_UP, R1, W0, R0),
        _el(_DOWN, R0, W1, R1),
        _el(_DOWN, R1, W0, R0),
        _el(_ANY, R0),
    ),
    "March C+; adds read verification after each write.",
)

#: March A: 15N, linked coupling faults.
MARCH_A = MarchTest(
    "March A",
    (
        _el(_ANY, W0),
        _el(_UP, R0, W1, W0, W1),
        _el(_UP, R1, W0, W1),
        _el(_DOWN, R1, W0, W1, W0),
        _el(_DOWN, R0, W1, W0),
    ),
    "March A [Suk & Reddy 81]; linked CFs.",
)

#: March B: 17N, March A plus TF linked with CFs.
MARCH_B = MarchTest(
    "March B",
    (
        _el(_ANY, W0),
        _el(_UP, R0, W1, R1, W0, R0, W1),
        _el(_UP, R1, W0, W1),
        _el(_DOWN, R1, W0, W1, W0),
        _el(_DOWN, R0, W1, W0),
    ),
    "March B [Suk & Reddy 81].",
)

#: March U: 13N, unlinked faults incl. some address-decoder opens.
MARCH_U = MarchTest(
    "March U",
    (
        _el(_ANY, W0),
        _el(_UP, R0, W1, R1, W0),
        _el(_UP, R0, W1),
        _el(_DOWN, R1, W0, R0, W1),
        _el(_DOWN, R1, W0),
    ),
    "March U [van de Goor 97].",
)

#: March LR: 14N, realistic linked faults.
MARCH_LR = MarchTest(
    "March LR",
    (
        _el(_ANY, W0),
        _el(_DOWN, R0, W1),
        _el(_UP, R1, W0, R0, W1),
        _el(_UP, R1, W0),
        _el(_UP, R0, W1, R1, W0),
        _el(_ANY, R0),
    ),
    "March LR [van de Goor et al. 96].",
)

#: March SR: 14N, simple realistic fault model (incl. SOF, DRF sensitising
#: sequences when combined with delays).
MARCH_SR = MarchTest(
    "March SR",
    (
        _el(_DOWN, W0),
        _el(_UP, R0, W1, R1, W0),
        _el(_UP, R0, R0),
        _el(_DOWN, W1),
        _el(_DOWN, R1, W0, R0, W1),
        _el(_DOWN, R1, R1),
    ),
    "March SR [Hamdioui & van de Goor 00].",
)

#: March SS: 22N, all static simple faults.
MARCH_SS = MarchTest(
    "March SS",
    (
        _el(_ANY, W0),
        _el(_UP, R0, R0, W0, R0, W1),
        _el(_UP, R1, R1, W1, R1, W0),
        _el(_DOWN, R0, R0, W0, R0, W1),
        _el(_DOWN, R1, R1, W1, R1, W0),
        _el(_ANY, R0),
    ),
    "March SS [Hamdioui et al. 02]; all static single-cell and two-cell faults.",
)

#: PMOVI: 13N, the March variant underlying the MOVI procedure.
PMOVI = MarchTest(
    "PMOVI",
    (
        _el(_DOWN, W0),
        _el(_UP, R0, W1, R1),
        _el(_UP, R1, W0, R0),
        _el(_DOWN, R0, W1, R1),
        _el(_DOWN, R1, W0, R0),
    ),
    "PMOVI [de Jonge & Smeulders 76]; base test of the MOVI procedure.",
)

#: The paper's production test: 11N, reconstructed from the bitmap
#: evidence (elements {R0W1}, {R1W0R0}, {R0W1R1} are named in Sections
#: 4.1 and 4.2).
TEST_11N = MarchTest(
    "11N",
    (
        _el(_ANY, W0),
        _el(_UP, R0, W1),
        _el(_UP, R1, W0, R0),
        _el(_DOWN, R0, W1, R1),
        _el(_DOWN, R1, W0),
    ),
    "The paper's 11N production test: a variation of MATS++, March C- "
    "and MOVI (DATE 2005, Section 2).",
)

#: March G: 23N + delays; here without the pause elements.
MARCH_G = MarchTest(
    "March G",
    (
        _el(_ANY, W0),
        _el(_UP, R0, W1, R1, W0, R0, W1),
        _el(_UP, R1, W0, W1),
        _el(_DOWN, R1, W0, W1, W0),
        _el(_DOWN, R0, W1, W0),
        _el(_ANY, R0, W1, R1),
        _el(_ANY, R1, W0, R0),
    ),
    "March G (delay elements omitted); SOF + DRF-oriented.",
)

#: March RAW: 26N, complete coverage of the read-disturb families
#: (RDF, DRDF, IRF, WDF) that resistive bridges in the cell produce --
#: the algorithm direction the paper's "new test algorithms for the
#: soft defects" future work points toward.
MARCH_RAW = MarchTest(
    "March RAW",
    (
        _el(_ANY, W0),
        _el(_UP, R0, W0, R0, R0, W1, R1),
        _el(_UP, R1, W1, R1, R1, W0, R0),
        _el(_DOWN, R0, W0, R0, R0, W1, R1),
        _el(_DOWN, R1, W1, R1, R1, W0, R0),
        _el(_ANY, R0),
    ),
    "March RAW [van de Goor & Al-Ars 00]; all realistic read/write "
    "disturb faults.",
)

#: March G with its retention delays: the published form interleaves
#: pause elements before the final verify passes so data-retention
#: faults have time to decay.  The pause length here is in cycles; at
#: the 100 ns production period 2000 cycles model a 200 us hold.
MARCH_G_DEL = MarchTest(
    "March G+Del",
    (
        _el(_ANY, W0),
        _el(_UP, R0, W1, R1, W0, R0, W1),
        _el(_UP, R1, W0, W1),
        _el(_DOWN, R1, W0, W1, W0),
        _el(_DOWN, R0, W1, W0),
        PauseElement(2000),
        _el(_ANY, R0, W1, R1),
        PauseElement(2000),
        _el(_ANY, R1, W0, R0),
    ),
    "March G with retention delay elements; detects DRF.",
)


#: All library tests keyed by canonical name.
STANDARD_TESTS: dict[str, MarchTest] = {
    t.name: t
    for t in (
        MATS, MATS_PLUS, MATS_PLUS_PLUS, MARCH_X, MARCH_Y, MARCH_CM,
        MARCH_CP, MARCH_A, MARCH_B, MARCH_U, MARCH_LR, MARCH_SR, MARCH_SS,
        PMOVI, TEST_11N, MARCH_G, MARCH_G_DEL, MARCH_RAW,
    )
}


def get_test(name: str) -> MarchTest:
    """Look up a library test by name (raises ``KeyError`` with choices)."""
    try:
        return STANDARD_TESTS[name]
    except KeyError:
        raise KeyError(
            f"unknown march test {name!r}; available: "
            f"{sorted(STANDARD_TESTS)}"
        ) from None


def movi_schedule(address_bits: int) -> list[int]:
    """Address-bit rotation schedule of the MOVI procedure.

    MOVI (March with Overlapped Read and Inversion) reruns the base march
    test ``address_bits`` times; in run *i*, address bit *i* is the
    fastest-toggling bit, which exercises every address-transition pair and
    gives at-speed sensitisation of address-decoder delay faults.

    Returns:
        The list of bit indices, one per run.
    """
    if address_bits <= 0:
        raise ValueError("address_bits must be positive")
    return list(range(address_bits))
