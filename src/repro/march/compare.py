"""March test efficiency comparison: coverage per operation.

Test selection in production balances coverage against test time (ops
per cell = the kN factor).  This module computes the classical
efficiency view over any test set and fault-class mix: per-test coverage
scores, the coverage-per-op efficiency ratio, and the efficiency
frontier (tests not dominated in both cost and coverage) -- the
quantitative backdrop to the paper's choice of an 11N production test
over heavier algorithms.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.march.test import MarchTest

#: Default class mix for scoring (equal-weight classical set plus the
#: dynamic class the paper's soft defects motivate).
DEFAULT_CLASSES: tuple[str, ...] = ("SAF", "TF", "AF", "CFin", "CFst",
                                    "dRDF")


@dataclass(frozen=True)
class TestScore:
    """Scoring of one march test.

    Attributes:
        test_name: The test.
        complexity: Ops per cell (kN factor).
        per_class: Class name -> coverage fraction.
        score: Mean coverage over the class mix.
    """

    test_name: str
    complexity: int
    per_class: dict[str, float]
    score: float

    @property
    def efficiency(self) -> float:
        """Coverage points per op -- the selection figure of merit."""
        return self.score / self.complexity if self.complexity else 0.0


def score_tests(tests: Sequence[MarchTest],
                classes: Sequence[str] = DEFAULT_CLASSES,
                n_cells: int = 8,
                weights: dict[str, float] | None = None) -> list[TestScore]:
    """Score every test over the class mix (optionally weighted)."""
    # Imported here: repro.faults.coverage itself imports the march
    # package (sequencer), so a module-level import would be circular.
    from repro.faults.coverage import class_coverage

    if not tests:
        raise ValueError("need at least one test")
    if not classes:
        raise ValueError("need at least one fault class")
    weights = weights or {}
    total_weight = sum(weights.get(c, 1.0) for c in classes)
    out = []
    for test in tests:
        per_class = {
            c: class_coverage(test, c, n_cells).coverage for c in classes
        }
        score = sum(per_class[c] * weights.get(c, 1.0)
                    for c in classes) / total_weight
        out.append(TestScore(test.name, test.complexity, per_class, score))
    return out


def efficiency_frontier(scores: Sequence[TestScore]) -> list[TestScore]:
    """Tests not dominated in (complexity, score).

    A test is dominated when another test covers at least as much for
    strictly fewer ops (or strictly more for the same ops).  Returned in
    complexity order -- the menu a test engineer actually chooses from.
    """
    ordered = sorted(scores, key=lambda s: (s.complexity, -s.score))
    frontier: list[TestScore] = []
    best = -1.0
    for s in ordered:
        if s.score > best + 1e-12:
            frontier.append(s)
            best = s.score
    return frontier


def render_scores(scores: Sequence[TestScore]) -> str:
    """Fixed-width efficiency table."""
    classes = list(scores[0].per_class) if scores else []
    header = (f"{'test':>12} {'kN':>4} "
              + " ".join(f"{c:>6}" for c in classes)
              + f" {'score':>6} {'eff':>6}")
    lines = [header, "-" * len(header)]
    for s in sorted(scores, key=lambda s: -s.efficiency):
        lines.append(
            f"{s.test_name:>12} {s.complexity:>4} "
            + " ".join(f"{100 * s.per_class[c]:>6.1f}" for c in classes)
            + f" {100 * s.score:>6.1f} {100 * s.efficiency:>6.2f}"
        )
    return "\n".join(lines)
