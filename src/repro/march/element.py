"""March elements: an address order plus a fixed operation list.

Standard notation (van de Goor): ``⇑(r0, w1)`` applies ``r0`` then ``w1``
to every address in ascending order; ``⇓`` descends; ``⇕`` means the
order is irrelevant.  ASCII aliases ``^ v *`` (and ``up down any``) are
accepted by the parser so tests can be written in plain text.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.march.ops import Op


class AddressOrder(Enum):
    """Address sequencing direction of a march element."""

    UP = "up"
    DOWN = "down"
    ANY = "any"

    @property
    def symbol(self) -> str:
        return {"up": "⇑", "down": "⇓", "any": "⇕"}[self.value]

    def reversed(self) -> "AddressOrder":
        if self is AddressOrder.UP:
            return AddressOrder.DOWN
        if self is AddressOrder.DOWN:
            return AddressOrder.UP
        return AddressOrder.ANY

    @staticmethod
    def parse(symbol: str) -> "AddressOrder":
        mapping = {
            "⇑": AddressOrder.UP, "^": AddressOrder.UP, "up": AddressOrder.UP,
            "⇓": AddressOrder.DOWN, "v": AddressOrder.DOWN,
            "down": AddressOrder.DOWN,
            "⇕": AddressOrder.ANY, "*": AddressOrder.ANY,
            "any": AddressOrder.ANY,
        }
        key = symbol.strip().lower() if len(symbol.strip()) > 1 else symbol.strip()
        if key not in mapping:
            raise ValueError(f"unknown address order symbol: {symbol!r}")
        return mapping[key]


@dataclass(frozen=True)
class MarchElement:
    """One march element.

    Attributes:
        order: Address sequencing direction.
        ops: The operations applied to each address, in order.
    """

    order: AddressOrder
    ops: tuple[Op, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("march element must contain at least one operation")
        object.__setattr__(self, "ops", tuple(self.ops))

    def __len__(self) -> int:
        """Number of operations per address (the element's N-weight)."""
        return len(self.ops)

    @property
    def notation(self) -> str:
        body = ",".join(op.notation for op in self.ops)
        return f"{self.order.symbol}({body})"

    def __str__(self) -> str:
        return self.notation

    @property
    def reads(self) -> tuple[Op, ...]:
        return tuple(op for op in self.ops if op.is_read)

    @property
    def writes(self) -> tuple[Op, ...]:
        return tuple(op for op in self.ops if op.is_write)

    def final_write_value(self) -> int | None:
        """Value left in each visited cell, or ``None`` if the element
        performs no write (state is unchanged)."""
        for op in reversed(self.ops):
            if op.is_write:
                return op.value
        return None

    def entry_state(self) -> int | None:
        """Cell state this element expects on entry.

        Derived from the first read: an element beginning with ``r0``
        requires all cells to hold 0.  Elements that start with a write
        have no entry requirement (``None``).
        """
        first = self.ops[0]
        return first.value if first.is_read else None

    def is_consistent(self) -> bool:
        """Check internal read/write consistency.

        Walking the ops left to right, every read after a write must
        expect the last written value.  (Reads before the first write are
        entry-state requirements, not checked here.)
        """
        state: int | None = None
        for op in self.ops:
            if op.is_write:
                state = op.value
            elif state is not None and op.value != state:
                return False
        return True

    def inverted_data(self) -> "MarchElement":
        """The element with every data value complemented (background
        inversion, used to build MOVI-style complement passes)."""
        return MarchElement(self.order, tuple(op.inverted() for op in self.ops))

    def reversed_order(self) -> "MarchElement":
        return MarchElement(self.order.reversed(), self.ops)

    @staticmethod
    def parse(text: str) -> "MarchElement":
        """Parse notation like ``'^(r0,w1)'`` or ``'⇓(r1, w0, r0)'``."""
        text = text.strip()
        paren = text.find("(")
        if paren < 0 or not text.endswith(")"):
            raise ValueError(f"cannot parse march element: {text!r}")
        order = AddressOrder.parse(text[:paren])
        body = text[paren + 1:-1]
        ops = tuple(Op.parse(tok) for tok in body.split(",") if tok.strip())
        return MarchElement(order, ops)
