"""Pause (delay) elements for data-retention testing.

Several published march tests -- March G being the canonical example --
interleave *delay* elements between march elements: the test idles for a
retention interval so cells with data-retention faults (weak pull-ups,
leaky storage nodes; the pull-up-open class of this library) have time
to lose their state before the following read pass.

:class:`PauseElement` represents such a delay.  It applies no operations
to any address; the sequencer simply advances the cycle counter, which
is exactly what lets :class:`~repro.faults.models.DataRetentionFault`
(idle-cycle driven) decay.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PauseElement:
    """A delay element: idle for a fixed number of clock cycles.

    Attributes:
        cycles: Idle clock cycles.  Production tests express the pause in
            wall time (e.g. 100 ms); at a fixed test period the two views
            are proportional, and the functional machinery works in
            cycles.
    """

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError("pause must last at least one cycle")

    def __len__(self) -> int:
        """Operations per address: none (pauses add time, not ops)."""
        return 0

    @property
    def notation(self) -> str:
        return f"Del({self.cycles})"

    def __str__(self) -> str:
        return self.notation

    # March-element protocol stubs (state-neutral):
    @property
    def ops(self) -> tuple:
        return ()

    @property
    def reads(self) -> tuple:
        return ()

    @property
    def writes(self) -> tuple:
        return ()

    def final_write_value(self) -> None:
        return None

    def entry_state(self) -> None:
        return None

    def is_consistent(self) -> bool:
        return True

    @staticmethod
    def parse(text: str) -> "PauseElement":
        """Parse ``'Del(100)'`` notation."""
        text = text.strip()
        if not (text.startswith("Del(") and text.endswith(")")):
            raise ValueError(f"cannot parse pause element: {text!r}")
        return PauseElement(int(text[4:-1]))
