"""End-to-end memory test flow (the paper's Figure 2, orchestrated).

:class:`MemoryTestFlow` wires the pieces together:

1. build/accept the synthetic layout and extract defect sites (IFA);
2. run the one-defect-at-a-time coverage campaign over a resistance grid
   and the production stress-condition suite;
3. collect the results into the pre-calculated database;
4. hand the database to the :class:`FaultCoverageEstimator`.

One call -- ``MemoryTestFlow(geometry).run()`` -- reproduces the paper's
Table 1 for any memory organisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.technology import CMOS018, Technology
from repro.core.database import CoverageDatabase
from repro.core.estimator import EstimatorReport, FaultCoverageEstimator
from repro.defects.behavior import BehaviorParams, DefectBehaviorModel
from repro.defects.distribution import DefectDensity
from repro.defects.models import DefectKind
from repro.ifa.flow import TABLE1_RESISTANCES, IfaCampaign
from repro.memory.geometry import MemoryGeometry
from repro.stress import StressCondition, production_conditions


@dataclass
class FlowResult:
    """Everything the flow produced."""

    database: CoverageDatabase
    estimator: FaultCoverageEstimator
    bridge_report: EstimatorReport
    open_report: EstimatorReport


class MemoryTestFlow:
    """The IFA-based memory test flow.

    Args:
        geometry: Memory organisation to analyse.
        tech: Technology corner.
        behavior_params: Optional calibration override.
        n_sites: Site-population size per campaign.
        seed: Campaign RNG seed.
        density: Fab defect density for the yield/DPM models.
    """

    def __init__(self, geometry: MemoryGeometry,
                 tech: Technology = CMOS018,
                 behavior_params: BehaviorParams | None = None,
                 n_sites: int = 2000, seed: int = 2005,
                 density: DefectDensity | None = None) -> None:
        self.geometry = geometry
        self.tech = tech
        self.behavior = DefectBehaviorModel(tech, params=behavior_params)
        self.campaign = IfaCampaign(geometry, tech, behavior=self.behavior,
                                    n_sites=n_sites, seed=seed)
        self.density = density if density is not None else DefectDensity()

    def conditions(self) -> dict[str, StressCondition]:
        return production_conditions(self.tech)

    def run(self,
            bridge_resistances=TABLE1_RESISTANCES,
            open_resistances=None,
            yield_fraction: float | None = None) -> FlowResult:
        """Run the full flow and return database + estimator reports.

        Args:
            bridge_resistances: R sweep for bridges (defaults to the
                paper's Table 1 grid).
            open_resistances: R sweep for opens (defaults to a log grid
                over 10 kOhm .. 30 MOhm covering Figure 8's range).
            yield_fraction: Optional yield override for the DPM model.
        """
        if open_resistances is None:
            open_resistances = np.logspace(4, 7.5, 12)
        conds = list(self.conditions().values())
        database = CoverageDatabase()
        database.add_records(self.campaign.run(
            bridge_resistances, conds, DefectKind.BRIDGE))
        database.add_records(self.campaign.run(
            open_resistances, conds, DefectKind.OPEN))
        estimator = FaultCoverageEstimator(database, density=self.density)
        return FlowResult(
            database=database,
            estimator=estimator,
            bridge_report=estimator.estimate(self.geometry, "bridge",
                                             yield_fraction),
            open_report=estimator.estimate(self.geometry, "open",
                                           yield_fraction),
        )
