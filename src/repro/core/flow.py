"""End-to-end memory test flow (the paper's Figure 2, orchestrated).

:class:`MemoryTestFlow` wires the pieces together:

1. build/accept the synthetic layout and extract defect sites (IFA);
2. run the one-defect-at-a-time coverage campaign over a resistance grid
   and the production stress-condition suite;
3. collect the results into the pre-calculated database;
4. hand the database to the :class:`FaultCoverageEstimator`.

One call -- ``MemoryTestFlow(geometry).run()`` -- reproduces the paper's
Table 1 for any memory organisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.technology import CMOS018, Technology
from repro.core.database import CoverageDatabase
from repro.core.estimator import EstimatorReport, FaultCoverageEstimator
from repro.defects.behavior import BehaviorParams, DefectBehaviorModel
from repro.defects.distribution import DefectDensity
from repro.defects.models import DefectKind
from repro.ifa.flow import TABLE1_RESISTANCES, IfaCampaign
from repro.memory.geometry import MemoryGeometry
from repro.runner.campaign import CampaignResult, CampaignRunner, SweepSpec
from repro.stress import StressCondition, production_conditions


@dataclass
class FlowResult:
    """Everything the flow produced.

    ``campaign`` carries the runner's execution report (quarantine
    ledger, resumed/executed unit counts, retry statistics) when the
    flow ran through the resilient runner.
    """

    database: CoverageDatabase
    estimator: FaultCoverageEstimator
    bridge_report: EstimatorReport
    open_report: EstimatorReport
    campaign: "CampaignResult | None" = None


class MemoryTestFlow:
    """The IFA-based memory test flow.

    Args:
        geometry: Memory organisation to analyse.
        tech: Technology corner.
        behavior_params: Optional calibration override.
        n_sites: Site-population size per campaign.
        seed: Campaign RNG seed.
        density: Fab defect density for the yield/DPM models.
    """

    def __init__(self, geometry: MemoryGeometry,
                 tech: Technology = CMOS018,
                 behavior_params: BehaviorParams | None = None,
                 n_sites: int = 2000, seed: int = 2005,
                 density: DefectDensity | None = None) -> None:
        self.geometry = geometry
        self.tech = tech
        self.behavior = DefectBehaviorModel(tech, params=behavior_params)
        self.campaign = IfaCampaign(geometry, tech, behavior=self.behavior,
                                    n_sites=n_sites, seed=seed)
        self.density = density if density is not None else DefectDensity()

    def conditions(self) -> dict[str, StressCondition]:
        return production_conditions(self.tech)

    def flow_meta(self) -> dict:
        """Campaign fingerprint stored in (and matched against) the
        checkpoint, rich enough for ``repro campaign resume`` to rebuild
        the flow from the file alone."""
        g = self.geometry
        return {
            "geometry": [g.rows, g.columns, g.bits_per_word, g.blocks],
            "tech": self.tech.name,
        }

    def sweep_specs(self,
                    bridge_resistances=TABLE1_RESISTANCES,
                    open_resistances=None) -> list[SweepSpec]:
        """The flow's campaign plan: bridge sweep then open sweep."""
        if open_resistances is None:
            open_resistances = np.logspace(4, 7.5, 12)
        conds = tuple(self.conditions().values())
        return [
            SweepSpec.of(DefectKind.BRIDGE, bridge_resistances, conds),
            SweepSpec.of(DefectKind.OPEN, open_resistances, conds),
        ]

    def make_runner(self, checkpoint_path=None, **runner_kwargs,
                    ) -> CampaignRunner:
        """A resilient runner bound to this flow's campaign."""
        return CampaignRunner(self.campaign,
                              checkpoint_path=checkpoint_path,
                              meta=self.flow_meta(), **runner_kwargs)

    def run(self,
            bridge_resistances=TABLE1_RESISTANCES,
            open_resistances=None,
            yield_fraction: float | None = None,
            checkpoint_path=None,
            runner: CampaignRunner | None = None,
            workers: int = 1, cache=None,
            strategy: str = "exact", journal=None) -> FlowResult:
        """Run the full flow and return database + estimator reports.

        Both campaigns execute chunked through the resilient runner
        (:mod:`repro.runner`): per-site failures are retried and
        quarantined rather than fatal, and with ``checkpoint_path``
        set, a killed flow resumes from the last completed (R,
        condition) unit.  ``workers``/``cache`` enable the
        :mod:`repro.perf` process pool and evaluation cache -- records
        stay byte-identical either way (``docs/performance.md``).

        Args:
            bridge_resistances: R sweep for bridges (defaults to the
                paper's Table 1 grid).
            open_resistances: R sweep for opens (defaults to a log grid
                over 10 kOhm .. 30 MOhm covering Figure 8's range).
            yield_fraction: Optional yield override for the DPM model.
            checkpoint_path: Optional checkpoint file enabling
                kill/resume of the whole flow.
            runner: Pre-configured runner (chaos injection, custom
                retry policy); overrides ``checkpoint_path``,
                ``workers``, ``cache`` and ``strategy``.
            workers: Evaluation processes (1 = serial).
            cache: Optional :class:`~repro.perf.cache.EvaluationCache`
                or cache-file path.
            strategy: ``"exact"``, ``"frontier"`` (the monotone
                threshold sweep solver, :mod:`repro.perf.frontier`) or
                ``"batch"`` (the vectorised group evaluator,
                :mod:`repro.perf.batch`); records are byte-identical
                in all three.
            journal: Optional JSONL run-journal path (or event bus)
                recording the campaign's structured event stream
                (:mod:`repro.obs`); ``None`` keeps observability off
                with zero overhead.
        """
        specs = self.sweep_specs(bridge_resistances, open_resistances)
        if runner is None:
            runner = self.make_runner(checkpoint_path, workers=workers,
                                      cache=cache, strategy=strategy,
                                      journal=journal)
        result = runner.run(specs)
        database = CoverageDatabase(result.records)
        estimator = FaultCoverageEstimator(database, density=self.density)
        return FlowResult(
            database=database,
            estimator=estimator,
            bridge_report=estimator.estimate(self.geometry, "bridge",
                                             yield_fraction),
            open_report=estimator.estimate(self.geometry, "open",
                                           yield_fraction),
            campaign=result,
        )
