"""Core contribution: the fault coverage and DPM estimator.

The paper's deliverable to its customers: an IFA-backed pre-calculated
coverage database, the four-parameter estimator on top of it
(fault coverage, defect coverage, Williams-Brown DPM per stress
condition), and the end-to-end memory test flow that builds everything
from a memory geometry.
"""

from repro.core.database import CoverageDatabase, load_default_database
from repro.core.estimator import (
    ConditionEstimate,
    EstimatorReport,
    FaultCoverageEstimator,
)
from repro.core.flow import FlowResult, MemoryTestFlow
from repro.core.testplan import (
    JointCoverageTable,
    TestPlan,
    TestPlanOptimizer,
)
from repro.core.williams_brown import (
    defect_level,
    dpm,
    poisson_yield,
    required_coverage,
)
from repro.stress import (
    ATSPEED_PERIOD,
    SLOW_PERIOD,
    StressCondition,
    production_conditions,
    standard_conditions,
)

__all__ = [
    "ATSPEED_PERIOD",
    "ConditionEstimate",
    "CoverageDatabase",
    "EstimatorReport",
    "FaultCoverageEstimator",
    "FlowResult",
    "JointCoverageTable",
    "MemoryTestFlow",
    "SLOW_PERIOD",
    "StressCondition",
    "TestPlan",
    "TestPlanOptimizer",
    "defect_level",
    "load_default_database",
    "dpm",
    "poisson_yield",
    "production_conditions",
    "required_coverage",
    "standard_conditions",
]
