"""Test-plan optimisation: stress conditions vs test time vs DPM.

The paper's closing recommendation: "Test time is an issue during
production when we consider the implementation of many algorithms under
various stress conditions.  Hence, it is recommended to have the best
test algorithms combined with specific stress conditions (VLV at low
frequency, Vnom and Vmax at high frequency) to reduce test escapes and
deliver high quality products."

This module turns that sentence into an optimiser:

* :class:`JointCoverageTable` -- Monte-Carlo joint detectability: which
  sampled defects each stress condition catches, so the coverage of any
  condition *subset* (the union) is computable -- something the marginal
  per-condition database cannot answer;
* a test-time model (march complexity x array size x clock period, plus
  per-condition setup overhead);
* :class:`TestPlanOptimizer` -- exhaustive search over condition subsets
  for (a) the cheapest plan meeting a DPM target and (b) the full
  time/DPM Pareto front.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.circuit.technology import Technology
from repro.core.williams_brown import dpm as williams_brown_dpm
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.distribution import (
    DefectDensity,
    ResistanceDistribution,
    default_bridge_distribution,
    default_open_distribution,
)
from repro.ifa.extraction import IfaExtractor
from repro.march.test import MarchTest
from repro.memory.geometry import MemoryGeometry
from repro.stress import StressCondition


class JointCoverageTable:
    """Per-defect detection across a condition suite.

    Args:
        geometry: Memory organisation.
        tech: Technology corner.
        conditions: Name -> condition suite to tabulate.
        behavior: Behaviour model (default built from ``tech``).
        n_samples: Monte-Carlo defect samples (site + resistance pairs).
        bridge_fraction: Defect-kind mix.
        seed: RNG seed.
    """

    def __init__(self, geometry: MemoryGeometry, tech: Technology,
                 conditions: dict[str, StressCondition],
                 behavior: DefectBehaviorModel | None = None,
                 bridge_distribution: ResistanceDistribution | None = None,
                 open_distribution: ResistanceDistribution | None = None,
                 n_samples: int = 3000,
                 bridge_fraction: float = 0.8,
                 seed: int = 2005) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        self.geometry = geometry
        self.conditions = dict(conditions)
        self.condition_names = list(conditions)
        behavior = behavior if behavior is not None else DefectBehaviorModel(tech)
        bridge_dist = bridge_distribution or default_bridge_distribution()
        open_dist = open_distribution or default_open_distribution()
        extractor = IfaExtractor(geometry)
        rng = np.random.default_rng(seed)

        n_bridges = int(round(n_samples * bridge_fraction))
        defects = extractor.sample_bridges(
            max(n_bridges, 1), rng,
            resistance_sampler=lambda r: bridge_dist.sample(r, 1)[0])
        defects += extractor.sample_opens(
            max(n_samples - n_bridges, 1), rng,
            resistance_sampler=lambda r: open_dist.sample(r, 1)[0])
        self.defects = defects

        # detection[i, j]: defect i caught by condition j.
        self.detection = np.zeros((len(defects), len(self.condition_names)),
                                  dtype=bool)
        for j, name in enumerate(self.condition_names):
            cond = self.conditions[name]
            for i, defect in enumerate(defects):
                self.detection[i, j] = behavior.fails_condition(defect, cond)

    # ------------------------------------------------------------------
    def subset_coverage(self, names: tuple[str, ...] | list[str]) -> float:
        """Defect coverage of a condition subset (union detection).

        Coverage is computed over the *detectable* defect population
        (defects no condition in the full suite catches are excluded:
        they are the irreducible escape floor, identical for every
        plan).
        """
        if not names:
            return 0.0
        cols = [self.condition_names.index(n) for n in names]
        any_full = self.detection.any(axis=1)
        detectable = int(any_full.sum())
        if detectable == 0:
            return 1.0
        caught = self.detection[:, cols].any(axis=1) & any_full
        return float(caught.sum()) / detectable


@dataclass(frozen=True)
class TestPlan:
    """One evaluated test plan (not a pytest class despite the name).

    Attributes:
        conditions: Chosen condition names (suite order).
        test_time: Total test time per device (s).
        defect_coverage: Union coverage over detectable defects.
        dpm: Williams-Brown defect level (PPM) at the plan's coverage.
    """

    __test__ = False  # keep pytest collection away from the Test* name

    conditions: tuple[str, ...]
    test_time: float
    defect_coverage: float
    dpm: float

    def __str__(self) -> str:
        names = "+".join(self.conditions) if self.conditions else "(none)"
        return (f"{names}: {self.test_time * 1e3:.1f} ms, "
                f"DC {100 * self.defect_coverage:.2f} %, "
                f"{self.dpm:.0f} DPM")


class TestPlanOptimizer:
    """Search condition subsets for time/quality optima.

    (Not a pytest class despite the name.)

    Args:
        table: Joint coverage table over the candidate suite.
        test: March test applied at every condition.
        density: Defect density (for yield -> DPM).
        setup_overhead: Per-condition setup time (supply settle, relearn;
            s) -- makes single-condition plans genuinely cheaper.
    """

    __test__ = False  # keep pytest collection away from the Test* name

    def __init__(self, table: JointCoverageTable, test: MarchTest,
                 density: DefectDensity | None = None,
                 setup_overhead: float = 1e-3) -> None:
        self.table = table
        self.test = test
        self.density = density if density is not None else DefectDensity()
        self.setup_overhead = setup_overhead
        self._yield = self.density.yield_fraction(
            table.geometry.array_area_um2())

    # ------------------------------------------------------------------
    def condition_time(self, name: str) -> float:
        """Test time of one condition: N x complexity x period + setup."""
        cond = self.table.conditions[name]
        ops = self.test.operation_count(self.table.geometry.words)
        return ops * cond.period + self.setup_overhead

    def evaluate(self, names: tuple[str, ...]) -> TestPlan:
        coverage = self.table.subset_coverage(names)
        time = sum(self.condition_time(n) for n in names)
        return TestPlan(tuple(names), time, coverage,
                        williams_brown_dpm(self._yield, coverage))

    def all_plans(self) -> list[TestPlan]:
        """Every non-empty condition subset, evaluated."""
        plans = []
        names = self.table.condition_names
        for r in range(1, len(names) + 1):
            for subset in itertools.combinations(names, r):
                plans.append(self.evaluate(subset))
        return plans

    def cheapest_meeting(self, target_dpm: float) -> TestPlan | None:
        """The fastest plan meeting a DPM target (None if unreachable)."""
        feasible = [p for p in self.all_plans() if p.dpm <= target_dpm]
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.test_time)

    def pareto_front(self) -> list[TestPlan]:
        """Time-ascending plans not dominated in (time, dpm)."""
        plans = sorted(self.all_plans(), key=lambda p: (p.test_time, p.dpm))
        front: list[TestPlan] = []
        best_dpm = float("inf")
        for plan in plans:
            if plan.dpm < best_dpm - 1e-12:
                front.append(plan)
                best_dpm = plan.dpm
        return front
