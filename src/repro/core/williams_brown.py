"""Defect level (DPM) and yield models.

Implements the paper's Section 3.1 equations:

* Williams-Brown defect level [Williams 81]:
  ``DL = 1 - Y^(1 - DC)``  (paper equation (1); the paper labels it DPM
  -- the fraction converts to parts-per-million by scaling with 1e6);
* Poisson yield: ``Y = exp(-A * D0)`` (paper equation (2)).

Both are tiny formulas, but they are the contract between the coverage
database and the quality numbers customers see, so they get a module,
full validation and property tests.
"""

from __future__ import annotations

import math


def poisson_yield(area_um2: float, d0_per_cm2: float) -> float:
    """Yield from chip area and fab defect density (paper eq. (2)).

    Args:
        area_um2: Chip (or memory) area in um^2.
        d0_per_cm2: Defect density in defects/cm^2.

    Returns:
        Yield fraction in (0, 1].
    """
    if area_um2 < 0:
        raise ValueError("area must be non-negative")
    if d0_per_cm2 < 0:
        raise ValueError("defect density must be non-negative")
    return math.exp(-area_um2 * 1e-8 * d0_per_cm2)


def defect_level(yield_fraction: float, defect_coverage: float) -> float:
    """Williams-Brown defect level (escape fraction, paper eq. (1)).

    Args:
        yield_fraction: Process yield Y in (0, 1].
        defect_coverage: Defect coverage DC in [0, 1].

    Returns:
        ``DL = 1 - Y^(1 - DC)``: the fraction of shipped parts that are
        defective.  0 when coverage is perfect; ``1 - Y`` when the test
        detects nothing.
    """
    if not 0.0 < yield_fraction <= 1.0:
        raise ValueError(f"yield must be in (0, 1], got {yield_fraction}")
    if not 0.0 <= defect_coverage <= 1.0:
        raise ValueError(f"coverage must be in [0, 1], got {defect_coverage}")
    return 1.0 - yield_fraction ** (1.0 - defect_coverage)


def dpm(yield_fraction: float, defect_coverage: float) -> float:
    """Defect level expressed in defective parts per million."""
    return 1e6 * defect_level(yield_fraction, defect_coverage)


def required_coverage(yield_fraction: float, target_dpm: float) -> float:
    """Defect coverage needed to reach a DPM target (inverse model).

    The planning question behind the paper's estimator: the automotive
    market wants ~10 DPM; given the process yield, how much defect
    coverage must the test bring?
    """
    if not 0.0 < yield_fraction < 1.0:
        raise ValueError("yield must be in (0, 1) for the inverse model")
    if target_dpm <= 0:
        raise ValueError("target_dpm must be positive")
    target_dl = target_dpm / 1e6
    if target_dl >= 1.0 - yield_fraction:
        return 0.0
    # 1 - Y^(1-DC) = DL  =>  DC = 1 - ln(1 - DL)/ln(Y)
    return 1.0 - math.log(1.0 - target_dl) / math.log(yield_fraction)
