"""The Fault Coverage and DPM Estimator -- the paper's core deliverable.

"The users can enter the four design parameters to the Fault Coverage
Estimator which are: the #X rows, the #Y columns, the #B bits per word
and the number of Z blocks (optional).  The estimator gives the fault
coverage and the DPM level based on a certain yield.  We relieve the
users from the burden of running a time consuming IFA analysis."
(paper, Section 3)

:class:`FaultCoverageEstimator` wraps a pre-calculated
:class:`~repro.core.database.CoverageDatabase`; given a memory geometry
it reports, per stress condition:

* fault coverage at each swept resistance (Table 1's middle columns),
* defect coverage (fault coverage weighted by the fab R-distribution),
* yield (from area and D0) and the Williams-Brown DPM,
* DPM normalised to the best condition (the paper normalises VLV = 1x).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import CoverageDatabase
from repro.core.williams_brown import defect_level, dpm, poisson_yield
from repro.defects.distribution import (
    DefectDensity,
    ResistanceDistribution,
    default_bridge_distribution,
    default_open_distribution,
)
from repro.memory.geometry import MemoryGeometry


class EmptyReportError(ValueError):
    """An :class:`EstimatorReport` with no condition estimates was queried.

    :meth:`FaultCoverageEstimator.estimate` never builds such a report
    (a kind absent from the database raises ``KeyError`` up front), so
    this only fires on hand-built reports -- but when it does, the
    message names the report instead of the bare ``min() arg is an
    empty sequence`` it used to surface.
    """


@dataclass(frozen=True)
class ConditionEstimate:
    """Estimator output for one stress condition.

    Attributes:
        condition: Condition name.
        fault_coverage: Map resistance (ohms) -> fault coverage [0, 1].
        defect_coverage: R-distribution-weighted coverage [0, 1].
        relative_coverage: Coverage relative to the *detectable*
            population (the per-R best-condition envelope); meaningful
            for opens where most of the R distribution is electrically
            benign at every condition.
        dpm: Williams-Brown defect level in parts per million.
        dpm_normalised: DPM relative to the suite's best condition
            (1.0 = best, the paper's "1x").
    """

    condition: str
    fault_coverage: dict[float, float]
    defect_coverage: float
    dpm: float
    dpm_normalised: float = field(default=0.0)
    relative_coverage: float = field(default=0.0)

    def with_normalisation(self, best_dpm: float) -> "ConditionEstimate":
        """This estimate with ``dpm_normalised`` set against ``best_dpm``.

        A perfect-coverage suite has ``best_dpm == 0``; the best
        condition's ``0/0`` then normalises to ``1.0`` (it is exactly
        as good as itself, the paper's "1x"), not ``inf``.  A non-zero
        DPM against a zero best is genuinely infinitely worse.
        """
        if best_dpm > 0:
            norm = self.dpm / best_dpm
        else:
            norm = 1.0 if self.dpm <= 0 else float("inf")
        return ConditionEstimate(self.condition, self.fault_coverage,
                                 self.defect_coverage, self.dpm, norm,
                                 self.relative_coverage)


@dataclass(frozen=True)
class EstimatorReport:
    """Full estimator output (one kind of defect).

    Attributes:
        kind: "bridge" or "open".
        geometry: The queried memory organisation.
        yield_fraction: Poisson yield used for the DPM model.
        estimates: Per-condition results, in suite order.
    """

    kind: str
    geometry: MemoryGeometry
    yield_fraction: float
    estimates: tuple[ConditionEstimate, ...]

    def best_condition(self) -> ConditionEstimate:
        """The condition with the lowest DPM.

        Raises:
            EmptyReportError: the report carries no estimates.
        """
        if not self.estimates:
            raise EmptyReportError(
                f"estimator report for kind={self.kind!r} "
                f"({self.geometry}) has no condition estimates")
        return min(self.estimates, key=lambda e: e.dpm)

    def by_condition(self, name: str) -> ConditionEstimate:
        for est in self.estimates:
            if est.condition == name:
                return est
        raise KeyError(f"no estimate for condition {name!r}")

    def dpm_ratio(self, worse: str, better: str) -> float:
        """E.g. ``dpm_ratio('Vmax', 'VLV')`` -- the paper's ~9.3x.

        ``0/0`` (both conditions escape-free) is ``1.0`` -- equal, not
        infinitely worse; only a non-zero DPM over a zero one is
        ``inf``.
        """
        b = self.by_condition(better).dpm
        w = self.by_condition(worse).dpm
        if b <= 0:
            return 1.0 if w <= 0 else float("inf")
        return w / b


class FaultCoverageEstimator:
    """Estimate fault coverage / defect coverage / DPM from the database.

    Args:
        database: Pre-calculated coverage results (from an
            :class:`~repro.ifa.flow.IfaCampaign` or loaded from disk).
        bridge_distribution: Fab bridge-resistance distribution.
        open_distribution: Fab open-resistance distribution.
        density: Defect density (for the yield model).
    """

    def __init__(
        self,
        database: CoverageDatabase,
        bridge_distribution: ResistanceDistribution | None = None,
        open_distribution: ResistanceDistribution | None = None,
        density: DefectDensity | None = None,
    ) -> None:
        self.database = database
        self.bridge_distribution = (bridge_distribution
                                    or default_bridge_distribution())
        self.open_distribution = open_distribution or default_open_distribution()
        self.density = density if density is not None else DefectDensity()

    # ------------------------------------------------------------------
    def yield_for(self, geometry: MemoryGeometry) -> float:
        """Poisson yield of the queried memory (paper eq. (2))."""
        return poisson_yield(geometry.array_area_um2(), self.density.d0_per_cm2)

    def estimate(self, geometry: MemoryGeometry, kind: str = "bridge",
                 yield_fraction: float | None = None) -> EstimatorReport:
        """Run the estimator for a memory geometry.

        Args:
            geometry: #X rows, #Y columns, #B bits, #Z blocks.
            kind: Defect kind to report ("bridge" reproduces Table 1).
            yield_fraction: Override the yield (the paper's estimator
                asks for "a certain yield"); derived from area x D0 when
                omitted.

        Returns:
            An :class:`EstimatorReport` with per-condition coverage and
            normalised DPM.

        Raises:
            ValueError: ``kind`` is not a defect kind, or the yield is
                outside ``(0, 1]``.
            KeyError: the database holds no records for ``kind`` (same
                message path as
                :meth:`~repro.core.database.CoverageDatabase.coverage`).
        """
        if kind not in ("bridge", "open"):
            raise ValueError("kind must be 'bridge' or 'open'")
        if not self.database.conditions(kind):
            raise KeyError(
                f"no records for kind={kind!r}; "
                f"available kinds: {self.database.kinds()}")
        dist = (self.bridge_distribution if kind == "bridge"
                else self.open_distribution)
        y = (self.yield_for(geometry) if yield_fraction is None
             else yield_fraction)
        if not 0.0 < y <= 1.0:
            raise ValueError(f"yield must be in (0, 1], got {y}")

        envelope = self.database.envelope_coverage(kind, dist)
        estimates = []
        for condition in self.database.conditions(kind):
            fc = {
                r: self.database.coverage(kind, condition, r)
                for r in self.database.resistances(kind)
            }
            dc = self.database.weighted_coverage(kind, condition, dist)
            estimates.append(ConditionEstimate(
                condition=condition,
                fault_coverage=fc,
                defect_coverage=dc,
                dpm=dpm(y, dc),
                relative_coverage=(dc / envelope if envelope > 0 else 1.0),
            ))
        best = min(e.dpm for e in estimates) if estimates else 0.0
        normalised = tuple(e.with_normalisation(best) for e in estimates)
        return EstimatorReport(kind, geometry, y, normalised)

    def escapes_per_million(self, geometry: MemoryGeometry, kind: str,
                            condition: str) -> float:
        """Convenience: the DPM of one condition alone."""
        report = self.estimate(geometry, kind)
        return report.by_condition(condition).dpm
