"""The pre-calculated coverage database.

"Calculating the fault coverage precisely would take years of simulation
time, but using a database with precalculated simulation results makes
the fault coverage estimation an easy job." (paper, Section 3)

:class:`CoverageDatabase` stores :class:`~repro.ifa.flow.CoverageRecord`
rows indexed by (defect kind, condition, resistance), supports log-R
interpolation for resistances between sweep points, and persists to/from
JSON so a campaign can be run once and shipped with the tool -- exactly
the deployment model the paper describes for its customers.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.ifa.flow import CoverageRecord


class CoverageDatabase:
    """Queryable store of per-(kind, condition, R) coverage results."""

    def __init__(self, records: list[CoverageRecord] | None = None) -> None:
        self._records: list[CoverageRecord] = []
        # (kind, condition) -> sorted list of (resistance, coverage)
        self._index: dict[tuple[str, str], list[tuple[float, float]]] = {}
        if records:
            self.add_records(records)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_records(self, records: list[CoverageRecord]) -> None:
        self._records.extend(records)
        self._rebuild_index()

    def _rebuild_index(self) -> None:
        self._index.clear()
        grouped: dict[tuple[str, str], dict[float, CoverageRecord]] = {}
        for rec in self._records:
            key = (rec.kind, rec.condition)
            grouped.setdefault(key, {})[rec.resistance] = rec
        for key, by_r in grouped.items():
            self._index[key] = sorted(
                (r, rec.coverage) for r, rec in by_r.items()
            )

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[CoverageRecord]:
        return list(self._records)

    def conditions(self, kind: str = "bridge") -> list[str]:
        return sorted({c for (k, c) in self._index if k == kind})

    def resistances(self, kind: str = "bridge") -> list[float]:
        out: set[float] = set()
        for (k, _), points in self._index.items():
            if k == kind:
                out.update(r for r, _ in points)
        return sorted(out)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def coverage(self, kind: str, condition: str, resistance: float) -> float:
        """Fault coverage at a resistance, log-R interpolated.

        Outside the swept range the nearest endpoint is used (coverage
        curves are monotone-flat at the extremes: very low R is
        detected-or-not regardless, very high R saturates).
        """
        key = (kind, condition)
        if key not in self._index:
            raise KeyError(
                f"no records for kind={kind!r}, condition={condition!r}; "
                f"available: {sorted(self._index)}"
            )
        points = self._index[key]
        if resistance <= points[0][0]:
            return points[0][1]
        if resistance >= points[-1][0]:
            return points[-1][1]
        for (r0, c0), (r1, c1) in zip(points, points[1:]):
            if r0 <= resistance <= r1:
                if r1 == r0:
                    return c0
                frac = (math.log(resistance) - math.log(r0)) / (
                    math.log(r1) - math.log(r0))
                return c0 + frac * (c1 - c0)
        raise AssertionError("unreachable")

    def envelope_coverage(self, kind: str, distribution,
                          n_grid: int = 96) -> float:
        """Weighted coverage of the best condition at every resistance.

        The per-R maximum over all stored conditions approximates the
        detectable fraction of the defect population (the union of the
        suite, up to correlations) -- the denominator for
        detectability-relative coverage.  Matters mostly for opens,
        where much of the resistance distribution is electrically
        benign at every condition.
        """
        conditions = self.conditions(kind)
        if not conditions:
            raise KeyError(f"no records for kind={kind!r}")
        grid = distribution.quantile_grid(n_grid)
        total = 0.0
        prev_cdf = distribution.cdf(grid[0])

        def best(r: float) -> float:
            return max(self.coverage(kind, c, r) for c in conditions)

        total += prev_cdf * best(grid[0])
        for r0, r1 in zip(grid, grid[1:]):
            cdf1 = distribution.cdf(r1)
            total += (cdf1 - prev_cdf) * best(math.sqrt(r0 * r1))
            prev_cdf = cdf1
        total += (1.0 - prev_cdf) * best(grid[-1])
        return min(max(total, 0.0), 1.0)

    def weighted_coverage(self, kind: str, condition: str,
                          distribution, n_grid: int = 96) -> float:
        """Defect coverage: fault coverage weighted by the resistance
        distribution (the paper's Section 3.1 step from fault coverage to
        defect coverage).

        Numerically integrates coverage(R) dP(R) over the distribution's
        quantile grid.
        """
        grid = distribution.quantile_grid(n_grid)
        total = 0.0
        prev_cdf = distribution.cdf(grid[0])
        total += prev_cdf * self.coverage(kind, condition, grid[0])
        for r0, r1 in zip(grid, grid[1:]):
            cdf1 = distribution.cdf(r1)
            mass = cdf1 - prev_cdf
            mid = math.sqrt(r0 * r1)
            total += mass * self.coverage(kind, condition, mid)
            prev_cdf = cdf1
        total += (1.0 - prev_cdf) * self.coverage(kind, condition, grid[-1])
        return min(max(total, 0.0), 1.0)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        payload = [
            {
                "kind": r.kind,
                "resistance": r.resistance,
                "condition": r.condition,
                "vdd": r.vdd,
                "period": r.period,
                "detected": r.detected,
                "total": r.total,
            }
            for r in self._records
        ]
        Path(path).write_text(json.dumps(payload, indent=1))

    @classmethod
    def load(cls, path: str | Path) -> "CoverageDatabase":
        payload = json.loads(Path(path).read_text())
        records = [CoverageRecord(**row) for row in payload]
        return cls(records)


def load_default_database() -> CoverageDatabase:
    """The pre-calculated CMOS 0.18 um database shipped with the package.

    Built once by a 6000-site IFA campaign over the Veqtor4 geometry
    (``scripts/build_database.py``); this is the deployment model the
    paper describes -- "we relieve the users from the burden of running
    a time consuming IFA analysis".
    """
    path = Path(__file__).resolve().parent.parent / "data" / \
        "cmos018_coverage.json"
    return CoverageDatabase.load(path)
