"""The pre-calculated coverage database.

"Calculating the fault coverage precisely would take years of simulation
time, but using a database with precalculated simulation results makes
the fault coverage estimation an easy job." (paper, Section 3)

:class:`CoverageDatabase` stores :class:`~repro.ifa.flow.CoverageRecord`
rows indexed by (defect kind, condition, resistance), supports log-R
interpolation for resistances between sweep points, and persists to/from
JSON so a campaign can be run once and shipped with the tool -- exactly
the deployment model the paper describes for its customers.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Callable

from repro.ifa.flow import CoverageRecord
from repro.runner.atomic import (
    EnvelopeError,
    atomic_write_text,
    temp_path_for,
    unwrap_envelope,
    wrap_envelope,
)

#: Envelope identity of the persisted database format.
DB_SCHEMA = "repro.coverage-database"
DB_VERSION = 1


class DatabaseCorruptError(RuntimeError):
    """A coverage-database file exists but cannot be trusted.

    Raised instead of the raw ``JSONDecodeError``/``KeyError`` a corrupt
    or truncated file used to surface: the message names the file and
    the specific defect so a shipped database that rotted in transit is
    diagnosable from the error alone.

    Attributes:
        path: The offending file.
        defect: What exactly is wrong with it.
    """

    def __init__(self, path: str | Path, defect: str) -> None:
        self.path = Path(path)
        self.defect = defect
        super().__init__(f"coverage database {self.path}: {defect}")


class CoverageDatabase:
    """Queryable store of per-(kind, condition, R) coverage results."""

    def __init__(self, records: list[CoverageRecord] | None = None) -> None:
        self._records: list[CoverageRecord] = []
        # (kind, condition) -> sorted list of (resistance, coverage)
        self._index: dict[tuple[str, str], list[tuple[float, float]]] = {}
        if records:
            self.add_records(records)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_records(self, records: list[CoverageRecord]) -> None:
        """Append records and rebuild the query index.

        Raises:
            ValueError: a record carries a non-positive or non-finite
                resistance.  The log-R interpolation in
                :meth:`coverage` takes ``log(R)`` of every stored
                sweep point, so one bad row would poison every
                interpolated query with a bare ``math domain error``;
                rejecting it here names the offending record instead.
        """
        for i, rec in enumerate(records):
            if not (rec.resistance > 0.0
                    and math.isfinite(rec.resistance)):
                raise ValueError(
                    f"record {i} (kind={rec.kind!r}, "
                    f"condition={rec.condition!r}) has non-positive or "
                    f"non-finite resistance {rec.resistance!r}; "
                    "log-R interpolation requires R > 0")
        self._records.extend(records)
        self._rebuild_index()

    def _rebuild_index(self) -> None:
        self._index.clear()
        grouped: dict[tuple[str, str], dict[float, CoverageRecord]] = {}
        for rec in self._records:
            key = (rec.kind, rec.condition)
            grouped.setdefault(key, {})[rec.resistance] = rec
        for key, by_r in grouped.items():
            self._index[key] = sorted(
                (r, rec.coverage) for r, rec in by_r.items()
            )

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[CoverageRecord]:
        return list(self._records)

    def kinds(self) -> list[str]:
        """Defect kinds with at least one stored record."""
        return sorted({k for (k, _) in self._index})

    def conditions(self, kind: str = "bridge") -> list[str]:
        return sorted({c for (k, c) in self._index if k == kind})

    def resistances(self, kind: str = "bridge") -> list[float]:
        out: set[float] = set()
        for (k, _), points in self._index.items():
            if k == kind:
                out.update(r for r, _ in points)
        return sorted(out)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def coverage(self, kind: str, condition: str, resistance: float) -> float:
        """Fault coverage at a resistance, log-R interpolated.

        Outside the swept range the nearest endpoint is used (coverage
        curves are monotone-flat at the extremes: very low R is
        detected-or-not regardless, very high R saturates).
        """
        key = (kind, condition)
        if key not in self._index:
            raise KeyError(
                f"no records for kind={kind!r}, condition={condition!r}; "
                f"available: {sorted(self._index)}"
            )
        points = self._index[key]
        if resistance <= points[0][0]:
            return points[0][1]
        if resistance >= points[-1][0]:
            return points[-1][1]
        for (r0, c0), (r1, c1) in zip(points, points[1:]):
            if r0 <= resistance <= r1:
                if r1 == r0:
                    return c0
                frac = (math.log(resistance) - math.log(r0)) / (
                    math.log(r1) - math.log(r0))
                return c0 + frac * (c1 - c0)
        raise AssertionError("unreachable")

    def envelope_coverage(self, kind: str, distribution,
                          n_grid: int = 96) -> float:
        """Weighted coverage of the best condition at every resistance.

        The per-R maximum over all stored conditions approximates the
        detectable fraction of the defect population (the union of the
        suite, up to correlations) -- the denominator for
        detectability-relative coverage.  Matters mostly for opens,
        where much of the resistance distribution is electrically
        benign at every condition.
        """
        conditions = self.conditions(kind)
        if not conditions:
            raise KeyError(f"no records for kind={kind!r}")
        grid = distribution.quantile_grid(n_grid)
        total = 0.0
        prev_cdf = distribution.cdf(grid[0])

        def best(r: float) -> float:
            return max(self.coverage(kind, c, r) for c in conditions)

        total += prev_cdf * best(grid[0])
        for r0, r1 in zip(grid, grid[1:]):
            cdf1 = distribution.cdf(r1)
            total += (cdf1 - prev_cdf) * best(math.sqrt(r0 * r1))
            prev_cdf = cdf1
        total += (1.0 - prev_cdf) * best(grid[-1])
        return min(max(total, 0.0), 1.0)

    def weighted_coverage(self, kind: str, condition: str,
                          distribution, n_grid: int = 96) -> float:
        """Defect coverage: fault coverage weighted by the resistance
        distribution (the paper's Section 3.1 step from fault coverage to
        defect coverage).

        Numerically integrates coverage(R) dP(R) over the distribution's
        quantile grid.
        """
        grid = distribution.quantile_grid(n_grid)
        total = 0.0
        prev_cdf = distribution.cdf(grid[0])
        total += prev_cdf * self.coverage(kind, condition, grid[0])
        for r0, r1 in zip(grid, grid[1:]):
            cdf1 = distribution.cdf(r1)
            mass = cdf1 - prev_cdf
            mid = math.sqrt(r0 * r1)
            total += mass * self.coverage(kind, condition, mid)
            prev_cdf = cdf1
        total += (1.0 - prev_cdf) * self.coverage(kind, condition, grid[-1])
        return min(max(total, 0.0), 1.0)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path,
             fault_hook: Callable[[str], None] | None = None) -> None:
        """Durably persist the database.

        Crash-safe: the JSON is written to a sibling temp file, fsynced
        and atomically renamed over the destination
        (:func:`repro.runner.atomic.atomic_write_text`), so a crash
        mid-save can never leave a truncated database behind.  The
        payload carries a schema version and a SHA-256 checksum that
        :meth:`load` verifies.

        Args:
            path: Destination file.
            fault_hook: Chaos probe threaded into the atomic write
                (see :mod:`repro.runner.chaos`).
        """
        rows = [
            {
                "kind": r.kind,
                "resistance": r.resistance,
                "condition": r.condition,
                "vdd": r.vdd,
                "period": r.period,
                "detected": r.detected,
                "total": r.total,
                "errors": r.errors,
            }
            for r in self._records
        ]
        envelope = wrap_envelope(DB_SCHEMA, DB_VERSION, {"records": rows})
        atomic_write_text(path, json.dumps(envelope, indent=1,
                                           sort_keys=True),
                          fault_hook=fault_hook)

    #: Keys every persisted record row must carry (``errors`` is
    #: optional for databases written before the resilient runner).
    _REQUIRED_ROW_KEYS = ("kind", "resistance", "condition", "vdd",
                          "period", "detected", "total")

    @classmethod
    def _records_from_rows(cls, path: Path,
                           rows: Any) -> list[CoverageRecord]:
        if not isinstance(rows, list):
            raise DatabaseCorruptError(
                path, f"expected a list of record rows, "
                      f"got {type(rows).__name__}")
        records: list[CoverageRecord] = []
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                raise DatabaseCorruptError(
                    path, f"record row {i} is {type(row).__name__}, "
                          "not an object")
            missing = [k for k in cls._REQUIRED_ROW_KEYS if k not in row]
            if missing:
                raise DatabaseCorruptError(
                    path, f"record row {i} is missing key(s) "
                          f"{', '.join(repr(k) for k in missing)}")
            try:
                record = CoverageRecord(**row)
            except (TypeError, ValueError) as exc:
                raise DatabaseCorruptError(
                    path, f"record row {i} is malformed: {exc}") from exc
            resistance = record.resistance
            if not (isinstance(resistance, (int, float))
                    and not isinstance(resistance, bool)
                    and resistance > 0.0 and math.isfinite(resistance)):
                raise DatabaseCorruptError(
                    path, f"record row {i} (kind={record.kind!r}, "
                          f"condition={record.condition!r}) has "
                          f"non-positive or non-finite resistance "
                          f"{resistance!r}; log-R interpolation "
                          "requires R > 0")
            records.append(record)
        return records

    @classmethod
    def _parse(cls, path: Path, text: str) -> "CoverageDatabase":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DatabaseCorruptError(
                path, f"invalid/truncated JSON ({exc})") from exc
        if isinstance(payload, list):
            # Legacy pre-envelope format: a bare list of record rows.
            return cls(cls._records_from_rows(path, payload))
        try:
            _, body = unwrap_envelope(payload, DB_SCHEMA, DB_VERSION)
        except EnvelopeError as exc:
            raise DatabaseCorruptError(path, str(exc)) from exc
        if "records" not in body:
            raise DatabaseCorruptError(
                path, "body is missing the 'records' key")
        return cls(cls._records_from_rows(path, body["records"]))

    @classmethod
    def load(cls, path: str | Path,
             bus: Any = None) -> "CoverageDatabase":
        """Load and validate a persisted database.

        Accepts both the checksummed envelope written by :meth:`save`
        and the legacy bare-list format.  When the destination is
        missing or corrupt but an intact ``.tmp`` sibling survives (a
        crash between write and rename), the temp file is recovered
        instead.

        Args:
            path: Database file location.
            bus: Optional :class:`~repro.obs.bus.EventBus`.  A corrupt
                ``.tmp`` sibling that is passed over during recovery is
                recorded as a ``database.discard_corrupt_tmp`` event
                (it used to be swallowed silently); the load outcome is
                unchanged.

        Raises:
            FileNotFoundError: neither the file nor a recoverable temp
                sibling exists.
            DatabaseCorruptError: the file fails JSON parsing, checksum
                or row validation (the message names path and defect).
                When both the file and its temp sibling are corrupt,
                the main file's error is raised and the sibling's is
                attached as ``__context__`` (and journalled via
                ``bus``).
        """
        path = Path(path)
        main_error: DatabaseCorruptError | None = None
        if path.exists():
            try:
                return cls._parse(path, path.read_text())
            except DatabaseCorruptError as exc:
                main_error = exc
        tmp = temp_path_for(path)
        tmp_error: DatabaseCorruptError | None = None
        if tmp.exists():
            try:
                return cls._parse(tmp, tmp.read_text())
            except DatabaseCorruptError as exc:
                tmp_error = exc
                if bus is not None:
                    bus.emit("database.discard_corrupt_tmp",
                             path=str(tmp), error=exc.defect)
        if main_error is not None:
            raise main_error from tmp_error
        if tmp_error is not None:
            # The destination never existed and its only candidate is
            # corrupt: that is a corruption story, not a missing-file
            # one, so surface the real defect.
            raise tmp_error
        raise FileNotFoundError(
            f"no coverage database at {path} "
            f"(and no recoverable {tmp.name})")


def default_database_path() -> Path:
    """Path of the pre-calculated database shipped with the package."""
    return Path(__file__).resolve().parent.parent / "data" / \
        "cmos018_coverage.json"


def load_default_database() -> CoverageDatabase:
    """The pre-calculated CMOS 0.18 um database shipped with the package.

    Built once by a 6000-site IFA campaign over the Veqtor4 geometry
    (``scripts/build_database.py``); this is the deployment model the
    paper describes -- "we relieve the users from the burden of running
    a time consuming IFA analysis".
    """
    return CoverageDatabase.load(default_database_path())
