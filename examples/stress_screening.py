"""Stress screening: the test engineer's workflow on a failing part.

Walks the paper's Section 4.1 diagnosis chain on a reconstructed
"Chip-1": a part that passes the complete standard production test yet
carries a resistive bridge.

  1. run the 11N test at the production conditions -> passes (escape!),
  2. add the VLV stress condition -> fails,
  3. shmoo the part over the (Vdd, period) plane,
  4. bitmap the VLV fails: which cells, which march elements, which
     read polarity -> conclude the defect class.

Run:  python examples/stress_screening.py
"""

from repro import CMOS018, BridgeSite, DefectBehaviorModel, MemoryGeometry, Sram
from repro.defects.models import bridge
from repro.march.library import TEST_11N
from repro.stress import production_conditions
from repro.tester.ate import VirtualTester
from repro.tester.bitmap import BitmapAnalyzer
from repro.tester.shmoo import (
    ShmooRunner,
    default_period_axis,
    default_voltage_axis,
)


def main() -> None:
    geometry = MemoryGeometry(rows=8, columns=2, bits_per_word=4)
    sram = Sram(geometry, CMOS018)
    tester = VirtualTester(DefectBehaviorModel(CMOS018))
    conditions = production_conditions(CMOS018)

    # The part under test: a 240 kohm storage-node-to-VDD bridge in cell
    # (word 3, bit 1) -- high-ohmic enough to hide at nominal voltage.
    victim = geometry.cell_index(3, 1)
    defect = bridge(BridgeSite.CELL_NODE_RAIL, 240e3, polarity=1,
                    cell=victim)

    # Step 1: the conventional flow ships this part.
    print("== standard production test (11N march) ==")
    for name in ("Vmin", "Vnom", "Vmax"):
        result = tester.test_device(sram, [defect], TEST_11N,
                                    conditions[name])
        print(f"  {conditions[name]}: {'PASS' if result.passed else 'FAIL'}")

    # Step 2: the VLV stress condition catches it.
    print("\n== added stress condition ==")
    vlv = tester.test_device(sram, [defect], TEST_11N, conditions["VLV"],
                             quick=False)
    print(f"  {conditions['VLV']}: {'PASS' if vlv.passed else 'FAIL'} "
          f"({len(vlv.fails)} failing reads)")

    # Step 3: shmoo the part (the paper's Figure 4).
    print("\n== shmoo plot (voltage vs period) ==")
    runner = ShmooRunner(tester, TEST_11N)
    plot = runner.run(sram, [defect], default_voltage_axis(),
                      default_period_axis(), "Chip-1 under test")
    print(plot.render())
    print(f"lowest passing voltage @ 100 ns: "
          f"{plot.min_passing_voltage(100e-9):.2f} V")

    # Step 4: bitmap diagnosis of the VLV fail log.
    print("\n== bitmap diagnosis ==")
    diagnosis = BitmapAnalyzer(geometry, TEST_11N).diagnose(vlv.fails)
    for sig in diagnosis.element_signatures:
        print(f"  failing march element {sig.notation} "
              f"(op {sig.failing_op_index}, {sig.fail_count} fail)")
    print(f"  verdict: {diagnosis.summary}")


if __name__ == "__main__":
    main()
