"""March test design: build, validate and evaluate a custom algorithm.

Shows the march-engine side of the library: author a test in standard
notation, run the static validator, score it against the classical
functional fault classes next to the published tests, and finally see
why algorithm strength alone cannot replace stress conditions.

Run:  python examples/march_test_design.py
"""

from repro import CMOS018, DefectBehaviorModel
from repro.analysis.tables import render_coverage_matrix
from repro.defects.models import BridgeSite, bridge
from repro.faults.coverage import coverage_matrix
from repro.march.library import MARCH_CM, MATS_PLUS_PLUS, TEST_11N
from repro.march.test import MarchTest
from repro.march.validation import validate
from repro.stress import production_conditions


def main() -> None:
    # 1. Author a test in standard notation (^ up, v down, * any).
    my_test = MarchTest.parse(
        "MyMarch-9N",
        "*(w0); ^(r0,w1); ^(r1,w0); v(r0,w1); v(r1,w0,r0)",
        description="a home-grown 9N algorithm",
    )
    print(f"{my_test}")
    print(f"complexity: {my_test.complexity}N, "
          f"{my_test.read_count()} reads/cell, "
          f"{my_test.transition_count()} write transitions\n")

    # 2. Static validation catches authoring mistakes.
    print("== validator ==")
    issues = validate(my_test)
    if issues:
        for issue in issues:
            print(f"  {issue}")
    else:
        print("  clean: no errors, no warnings")

    broken = MarchTest.parse("Broken", "*(w0); ^(r1,w0)")
    print("a deliberately broken test:")
    for issue in validate(broken):
        print(f"  {issue}")

    # 3. Classical fault-class coverage next to the published tests.
    print("\n== functional fault coverage (16-cell exhaustive) ==")
    matrix = coverage_matrix(
        [MATS_PLUS_PLUS, MARCH_CM, TEST_11N, my_test],
        ["SAF", "TF", "AF", "CFin", "CFst", "dRDF"],
        n_cells=8,
    )
    print(render_coverage_matrix(matrix))

    # 4. The paper's point: a perfect functional score still misses
    #    resistive defects without the right stress condition.
    print("\n== the stress-condition blind spot ==")
    behavior = DefectBehaviorModel(CMOS018)
    conditions = production_conditions(CMOS018)
    high_ohmic = bridge(BridgeSite.CELL_NODE_RAIL, 150e3)
    for name in ("Vnom", "VLV"):
        caught = behavior.fails_condition(high_ohmic, conditions[name])
        print(f"  150 kohm bridge under {name:>4}: "
              f"{'DETECTED (any march test)' if caught else 'ESCAPES (every march test)'}")


if __name__ == "__main__":
    main()
