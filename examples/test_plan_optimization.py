"""Test-plan optimisation: which stress conditions, at what cost?

The paper ends with a recommendation ("VLV at low frequency, Vnom and
Vmax at high frequency") born from the test-time pressure of running
many conditions.  This example computes the decision instead of quoting
it: the joint coverage of every stress-condition subset, the per-device
test time, the time/DPM Pareto front, and the cheapest plan meeting an
automotive-grade DPM target -- then deploys the winning plan through the
on-chip BIST engine.

Run:  python examples/test_plan_optimization.py
"""

from repro import CMOS018, DefectBehaviorModel
from repro.bist import BistEngine, ResponseMode
from repro.core.testplan import JointCoverageTable, TestPlanOptimizer
from repro.core.williams_brown import required_coverage
from repro.defects.injection import to_functional_fault
from repro.defects.models import BridgeSite, bridge
from repro.march.library import TEST_11N
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry
from repro.memory.sram import Sram
from repro.stress import production_conditions


def main() -> None:
    conditions = production_conditions(CMOS018)

    # 1. Joint detectability of the defect population per condition.
    print("building joint coverage table (3000 sampled defects)...")
    table = JointCoverageTable(VEQTOR4_INSTANCE, CMOS018, conditions,
                               n_samples=3000)
    print("\nsingle-condition coverage (of detectable defects):")
    for name in table.condition_names:
        print(f"  {name:>9}: {100 * table.subset_coverage((name,)):6.2f} %")

    # 2. The time/DPM Pareto front.
    optimizer = TestPlanOptimizer(table, TEST_11N)
    print("\ntime/DPM Pareto front:")
    for plan in optimizer.pareto_front():
        print(f"  {plan}")

    # 3. A quality target: how much coverage does 50 DPM take, and what
    #    is the cheapest plan that gets there?
    y = optimizer._yield
    needed = required_coverage(y, target_dpm=50.0)
    print(f"\nyield {100 * y:.2f} % -> 50 DPM needs "
          f"{100 * needed:.2f} % defect coverage")
    plan = optimizer.cheapest_meeting(50.0)
    print(f"cheapest plan meeting 50 DPM: {plan}")

    # 4. Deploy the plan on-chip: the BIST engine applies the same 11N
    #    patterns; the tester only switches conditions.
    print("\ndeploying through BIST (Chip-1-style VLV-only defect):")
    geometry = MemoryGeometry(8, 2, 4)
    sram = Sram(geometry, CMOS018)
    behavior = DefectBehaviorModel(CMOS018)
    defect = bridge(BridgeSite.CELL_NODE_RAIL, 150e3,
                    cell=geometry.cell_index(3, 1), polarity=1)
    engine = BistEngine(sram)
    for name in plan.conditions:
        sram.clear_faults()
        manifestation = behavior.manifestation(defect, conditions[name])
        if manifestation is not None:
            sram.attach_fault(
                to_functional_fault(manifestation, geometry=geometry))
        result = engine.run(TEST_11N, conditions[name], ResponseMode.MISR)
        verdict = "PASS" if result.passed else "FAIL"
        print(f"  BIST @ {name:>9}: {verdict} "
              f"(signature 0x{result.signature:04x}, "
              f"golden 0x{result.golden:04x})")
    sram.clear_faults()


if __name__ == "__main__":
    main()
