"""The silicon experiment: an 11k-device lot through the stress suite.

Reproduces the paper's Section 5 end to end: generate a Veqtor4 lot with
fab-sampled defects, screen with the 11N test at standard conditions,
re-test survivors at VLV / Vmax / at-speed, draw the Figure 11 Venn
diagram, and close the loop against the estimator's prediction.

Run:  python examples/silicon_experiment.py
"""

from repro import MemoryTestFlow, PopulationGenerator, PopulationSpec
from repro.analysis.figures import render_venn_comparison
from repro.experiment.classify import StressClassifier
from repro.experiment.venn import PAPER_VENN, VennCounts
from repro.memory.geometry import VEQTOR4_INSTANCE


def main() -> None:
    # 1. Build the lot: 11000 parts, four 256 Kbit instances each.
    spec = PopulationSpec(n_devices=11000, seed=1105)
    generator = PopulationGenerator(spec)
    chips = generator.generate()
    defective = sum(1 for c in chips if c.is_defective)
    print(f"lot: {spec.n_devices} parts, {defective} carry >=1 defect "
          f"(expected {generator.expected_defective_fraction():.1%})")

    # 2. Screen-then-stress protocol.
    classifier = StressClassifier()
    experiment = classifier.classify(chips)
    print(f"standard-test fails (yield loss): {experiment.n_standard_fails}")
    interesting = experiment.interesting_devices
    print(f"interesting devices (escapes of the standard flow): "
          f"{len(interesting)}\n")

    # 3. The Venn diagram (paper Figure 11).
    venn = VennCounts.from_experiment(experiment)
    print(render_venn_comparison(venn, PAPER_VENN))

    # 4. What each stress condition is worth, in DPM.
    print("\nescape rate each stress condition would have caught:")
    for name in ("VLV", "Vmax", "at-speed"):
        print(f"  {name:>9}: {experiment.escape_dpm(name):6.0f} DPM")

    # 5. Close the loop: the estimator predicted this from layout alone.
    report = MemoryTestFlow(VEQTOR4_INSTANCE,
                            n_sites=3000).run().bridge_report
    est_ratio = report.dpm_ratio("Vmax", "VLV")
    pop_ratio = (experiment.escape_dpm("VLV")
                 / max(experiment.escape_dpm("Vmax"), 1e-9))
    print("\nsimulation vs silicon (the paper's 'clear matching'):")
    print(f"  estimator DPM ratio Vmax/VLV : {est_ratio:5.1f}x "
          "(paper: 9.3x)")
    print(f"  lot escape ratio VLV/Vmax    : {pop_ratio:5.1f}x "
          "(paper Venn: ~6x)")


if __name__ == "__main__":
    main()
