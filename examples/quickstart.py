"""Quickstart: fault coverage and DPM for your memory, in ten lines.

The paper's deliverable was an estimator its customers could run without
owning an analogue-simulation farm: enter the four design parameters
(#X rows, #Y columns, #B bits/word, optional #Z blocks) and get fault
coverage, defect coverage and DPM per stress condition.

Run:  python examples/quickstart.py
"""

from repro import MemoryGeometry, MemoryTestFlow
from repro.analysis.tables import render_table1


def main() -> None:
    # 1. Describe your memory: 512 rows x 16 words x 32 bits = 256 Kbit
    #    (one Veqtor4 instance; change the numbers for your design).
    geometry = MemoryGeometry(rows=512, columns=16, bits_per_word=32)

    # 2. Run the IFA-based memory test flow: synthetic layout ->
    #    critical-area extraction -> per-defect stress simulation ->
    #    pre-calculated coverage database -> estimator.
    flow = MemoryTestFlow(geometry, n_sites=3000)
    result = flow.run()

    # 3. Read the answers.
    report = result.bridge_report
    print(f"memory: {geometry}")
    print(f"estimated yield: {100 * report.yield_fraction:.2f} %\n")
    print("Reproduction of the paper's Table 1 "
          "(paper values in parentheses):\n")
    print(render_table1(report))

    best = report.best_condition()
    vmax = report.by_condition("Vmax")
    print(f"\nbest stress condition: {best.condition} "
          f"({best.dpm:.0f} DPM)")
    print(f"skipping VLV would cost you "
          f"{vmax.dpm - best.dpm:.0f} extra DPM "
          f"({report.dpm_ratio('Vmax', 'VLV'):.1f}x, paper: 9.3x)")

    # 4. The same database answers open-defect questions.
    opens = result.open_report
    print("\nopen defects (defect coverage per condition):")
    for est in sorted(opens.estimates, key=lambda e: -e.defect_coverage):
        print(f"  {est.condition:>9}: {100 * est.defect_coverage:6.2f} %")


if __name__ == "__main__":
    main()
