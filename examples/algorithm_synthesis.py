"""Algorithm synthesis: the paper's future work, automated.

"As continuation of this research, we would like to explore new test
algorithms for targeting the soft defects."  This example runs the
greedy march synthesiser against three fault universes of increasing
modernity -- classical static faults, dynamic (at-speed) faults, and
address-decoder delay faults -- and compares the synthesised algorithms
with the published ones.

Run:  python examples/algorithm_synthesis.py
"""

from repro.faults.address_delay import generate_address_delay_faults
from repro.faults.dynamic import make_dynamic_rdf
from repro.march.compare import efficiency_frontier, render_scores, score_tests
from repro.march.library import (
    MARCH_CM,
    MARCH_RAW,
    MARCH_SS,
    MATS_PLUS_PLUS,
    TEST_11N,
)
from repro.march.synthesis import MarchSynthesizer, classical_universe
from repro.tester.movi import MoviExecutor


def main() -> None:
    synth = MarchSynthesizer(n_cells=6, max_ops_per_element=3,
                             max_elements=8)

    # 1. Classical static faults: can the search match the textbooks?
    print("== target: SAF + TF + AF + CFin ==")
    universe = classical_universe(6, ("SAF", "TF", "AF", "CFin"))
    result = synth.synthesise(universe, "Synth-static")
    print(f"  {result.test}")
    print(f"  coverage {result.detected}/{result.total} at "
          f"{result.test.complexity}N "
          f"(March C- needs {MARCH_CM.complexity}N, "
          f"MATS++ covers less at {MATS_PLUS_PLUS.complexity}N)")

    # 2. Dynamic faults: the soft-defect behaviours of the paper.
    print("\n== target: dynamic w-r faults (resistive-open image) ==")
    dyn_universe = []
    for cell in range(6):
        for state in (0, 1):
            dyn_universe.append(
                lambda cell=cell, state=state: make_dynamic_rdf(cell, state))
    result = synth.synthesise(dyn_universe, "Synth-dynamic")
    print(f"  {result.test}")
    print(f"  coverage {result.detected}/{result.total} at "
          f"{result.test.complexity}N")
    for notation, newly in result.history:
        print(f"    {notation}  (+{newly})")

    # 3. Decoder delay faults need the MOVI procedure, not just new
    #    elements: show the synthesised test still needs rotation.
    print("\n== target: address-decoder delay faults ==")
    bits = 4
    executor = MoviExecutor(bits)
    fault_universe = generate_address_delay_faults(bits)
    linear_hits = sum(
        executor.linear_reference(MARCH_CM, f).detected
        for f in fault_universe)
    movi_hits = sum(
        executor.run(MARCH_CM, f, stop_at_first_detection=True).detected
        for f in fault_universe)
    print(f"  March C- linear:  {linear_hits}/{len(fault_universe)} "
          "(only bit-0 faults)")
    print(f"  March C- + MOVI:  {movi_hits}/{len(fault_universe)} "
          "(the [Azimane 04] methodology)")
    print("  -> some soft defects need a *procedure* (address rotation "
          "at speed), not a longer element sequence")

    # 4. Where does the paper's production test sit on the efficiency
    #    frontier?
    print("\n== coverage-per-op efficiency of the published tests ==")
    scores = score_tests(
        [MATS_PLUS_PLUS, MARCH_CM, TEST_11N, MARCH_SS, MARCH_RAW],
        n_cells=6)
    print(render_scores(scores))
    frontier = [s.test_name for s in efficiency_frontier(scores)]
    print(f"efficiency frontier: {frontier}")


if __name__ == "__main__":
    main()
