"""Benchmark: paper Table 1 -- Defect Coverage and DPM Estimator.

Regenerates the full table (fault coverage per bridge resistance per
supply corner, weighted defect coverage, normalised DPM) from the IFA
campaign + estimator flow and checks every shape claim of Section 3.
"""

import pytest

from repro.analysis.tables import PAPER_TABLE1, render_table1
from repro.core.flow import MemoryTestFlow
from repro.memory.geometry import VEQTOR4_INSTANCE

PAPER_FC = {name: row["fault_coverage"] for name, row in PAPER_TABLE1.items()}


@pytest.fixture(scope="module")
def bridge_report():
    return MemoryTestFlow(VEQTOR4_INSTANCE,
                          n_sites=4000).run().bridge_report


def test_table1_regeneration(benchmark):
    report = benchmark(
        lambda: MemoryTestFlow(VEQTOR4_INSTANCE, n_sites=1500)
        .run().bridge_report
    )
    assert report.best_condition().condition == "VLV"


class TestTable1Shape:
    def test_render_and_print(self, bridge_report):
        print()
        print(render_table1(bridge_report))

    def test_every_cell_within_tolerance(self, bridge_report):
        worst = 0.0
        for cond, paper_row in PAPER_FC.items():
            est = bridge_report.by_condition(cond)
            for r, paper_pct in paper_row.items():
                measured = 100.0 * est.fault_coverage[r]
                worst = max(worst, abs(measured - paper_pct))
        assert worst < 5.0, f"worst Table 1 deviation {worst:.1f} pp"

    def test_low_ohmic_all_conditions_good(self, bridge_report):
        """Paper: at 20 ohm every corner exceeds 95 %."""
        for est in bridge_report.estimates:
            if est.condition == "at-speed":
                continue
            assert 100.0 * est.fault_coverage[20.0] > 93.0

    def test_high_ohmic_only_vlv_good(self, bridge_report):
        """Paper: at 90 kohm VLV ~89 %, Vmax collapses to ~1 %."""
        vlv = bridge_report.by_condition("VLV").fault_coverage[90e3]
        vmax = bridge_report.by_condition("Vmax").fault_coverage[90e3]
        assert vlv > 0.80
        assert vmax < 0.05

    def test_dpm_normalisation(self, bridge_report):
        """VLV = 1x; Vmax almost an order of magnitude worse (9.3x)."""
        vlv = bridge_report.by_condition("VLV")
        vmax = bridge_report.by_condition("Vmax")
        assert vlv.dpm_normalised == pytest.approx(1.0)
        assert 6.0 < vmax.dpm_normalised < 16.0

    def test_vmin_vnom_between(self, bridge_report):
        """Paper: Vmin/Vnom sit around 4.4x between the extremes."""
        for cond in ("Vmin", "Vnom"):
            norm = bridge_report.by_condition(cond).dpm_normalised
            vmax = bridge_report.by_condition("Vmax").dpm_normalised
            assert 1.0 < norm < vmax

    def test_defect_coverage_vs_paper(self, bridge_report):
        for cond in ("VLV", "Vmin", "Vnom", "Vmax"):
            measured = 100.0 * bridge_report.by_condition(
                cond).defect_coverage
            paper = PAPER_TABLE1[cond]["defect_coverage"]
            # The weighting distribution is a fab-data stand-in
            # (DESIGN.md); the pattern is what must hold.
            assert measured == pytest.approx(paper, abs=6.5), cond
