"""Benchmark: paper Figure 3 -- shmoo plot of a fault-free SRAM.

The reference shmoo: the device passes the whole specified supply range
at the standard 100 ns period, still passes VLV (1.0 V) at 100 ns, and
the pass/fail boundary bends toward longer periods as Vdd drops (the
alpha-power access-time curve) -- which is why VLV testing must run at
reduced frequency (Section 4.1).
"""

import numpy as np
import pytest

from repro.tester.shmoo import default_period_axis, default_voltage_axis


@pytest.fixture(scope="module")
def plot(shmoo_runner, small_sram):
    return shmoo_runner.run(small_sram, [], default_voltage_axis(),
                            default_period_axis(), "Figure 3: fault-free")


def test_fig3_regeneration(benchmark, shmoo_runner, small_sram):
    result = benchmark(
        shmoo_runner.run, small_sram, [],
        default_voltage_axis(steps=8), default_period_axis(steps=12))
    assert result.passed.any()


class TestFigure3Shape:
    def test_render(self, plot):
        print()
        print(plot.render())

    def test_passes_all_corners_at_standard_period(self, plot, conditions):
        for name in ("VLV", "Vmin", "Vnom", "Vmax"):
            cond = conditions[name]
            assert plot.passes_at(cond.vdd, cond.period), name

    def test_passes_at_speed_at_nominal(self, plot):
        """15 ns @ 1.8/1.95 V: the paper's at-speed characterisation on
        fault-free parts."""
        assert plot.passes_at(1.8, 15e-9)
        assert plot.passes_at(2.0, 15e-9)

    def test_fails_at_speed_at_vlv(self, plot):
        """VLV at high frequency fails even fault-free: the trade-off
        the paper highlights (test time vs quality)."""
        assert not plot.passes_at(1.0, 10e-9)

    def test_boundary_monotone(self, plot):
        """Min passing period decreases monotonically with Vdd."""
        periods = []
        for v in np.linspace(1.0, 2.2, 8):
            p = plot.min_passing_period(float(v))
            assert p is not None
            periods.append(p)
        assert all(a >= b - 1e-12 for a, b in zip(periods, periods[1:]))

    def test_boundary_steepens_below_vlv(self, plot):
        """The access-time blow-up toward VT."""
        p_low = plot.min_passing_period(0.9)
        p_vlv = plot.min_passing_period(1.0)
        p_nom = plot.min_passing_period(1.8)
        assert p_low > 1.3 * p_vlv
        assert p_vlv > 1.5 * p_nom
