"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and checks
the *shape* claims (who wins, by what factor, where crossovers fall);
absolute numbers are printed side by side with the paper's.
"""

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.march.library import TEST_11N
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram
from repro.stress import production_conditions
from repro.tester.ate import VirtualTester
from repro.tester.shmoo import ShmooRunner


@pytest.fixture(scope="session")
def tech():
    return CMOS018


@pytest.fixture(scope="session")
def behavior(tech):
    return DefectBehaviorModel(tech)


@pytest.fixture(scope="session")
def tester(behavior):
    return VirtualTester(behavior)


@pytest.fixture(scope="session")
def conditions(tech):
    return production_conditions(tech)


@pytest.fixture(scope="session")
def small_sram(tech):
    """A small instance for shmoo sweeps (electrical model is
    size-independent; the functional grid stays cheap)."""
    return Sram(MemoryGeometry(8, 2, 4), tech)


@pytest.fixture(scope="session")
def shmoo_runner(tester):
    return ShmooRunner(tester, TEST_11N)
