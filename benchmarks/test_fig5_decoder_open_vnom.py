"""Benchmark: paper Figure 5 -- injected decoder open escapes at Vnom.

Transistor-level reproduction: the resistive open at the LSB of the row
address decoder is spliced into the decoder netlist and simulated with
the Spice-like solver while the address cycles through all rows.  The
open delays the complement address phase, creating a dual-select hazard
window; at nominal supply the disturbed cell's flip time exceeds the
window -- the defect escapes, exactly as in the paper's Figure 5.
"""

import numpy as np
import pytest

from repro.analysis.figures import render_waveforms
from repro.circuit.solver import transient
from repro.defects.injection import inject_open_into_decoder
from repro.defects.models import OpenSite, open_defect
from repro.memory.decoder import decoder_input_waveforms

#: The canonical Figure 5/6 defect: 500 kohm open at address bit 0.
FIG56_DEFECT = open_defect(OpenSite.DECODER_INPUT, 5e5)
PERIOD = 25e-9
ADDRESS_SEQUENCE = [0, 1, 2, 3, 0]


def run_decoder_sim(tech, vdd, dt=0.1e-9):
    """Simulate the faulty decoder over the address sequence; returns
    (waveforms, max dual-select window in seconds)."""
    nl = inject_open_into_decoder(tech, vdd, FIG56_DEFECT, address_bits=2)
    waves_in = decoder_input_waveforms(ADDRESS_SEQUENCE, PERIOD, vdd, 2)
    for j in range(2):
        nl[f"Va{j}"].waveform = waves_in[f"a{j}"]
    record = ["a0", "a0b"] + [f"wl{r}" for r in range(4)]
    waves = transient(nl, t_stop=len(ADDRESS_SEQUENCE) * PERIOD, dt=dt,
                      record=record)
    wl = np.vstack([waves[f"wl{r}"].voltage for r in range(4)])
    dual = (wl > vdd / 2).sum(axis=0) >= 2
    best = cur = 0
    for flag in dual:
        cur = cur + 1 if flag else 0
        best = max(best, cur)
    return waves, best * dt


@pytest.fixture(scope="module")
def vnom_sim(tech):
    return run_decoder_sim(tech, tech.vdd_nominal)


def test_fig5_regeneration(benchmark, tech):
    _, window = benchmark.pedantic(
        run_decoder_sim, args=(tech, tech.vdd_nominal, 0.25e-9),
        rounds=1, iterations=1)
    assert window > 0.0


class TestFigure5Shape:
    def test_render_waveforms(self, vnom_sim, tech):
        waves, window = vnom_sim
        print()
        print(render_waveforms(waves, tech.vdd_nominal,
                               title="Figure 5: decoder open @ Vnom"))
        print(f"dual-select hazard window: {window * 1e9:.2f} ns")

    def test_hazard_window_exists(self, vnom_sim):
        """The open does create a dual-select window at Vnom..."""
        _, window = vnom_sim
        assert window > 0.3e-9

    def test_defect_escapes_at_vnom(self, vnom_sim, behavior, tech):
        """...but the window is shorter than the flip time at Vnom:
        the defect escapes (paper: 'The injected open defect escaped
        our test at these test conditions')."""
        _, window = vnom_sim
        assert window < behavior.decoder_disturb_flip_time(tech.vdd_nominal)

    def test_defect_escapes_at_vlv_too(self, behavior, tech):
        """Paper: 'we then simulated the same faulty netlist under the
        VLV test conditions, and again the defect escaped'."""
        _, window = run_decoder_sim(tech, tech.vdd_vlv, dt=0.25e-9)
        assert window < behavior.decoder_disturb_flip_time(tech.vdd_vlv)

    def test_every_row_still_selected(self, vnom_sim, tech):
        """Functionally the decoder still works at Vnom -- each word
        line rises during its cycle (the fault is a hazard, not a
        decode error)."""
        waves, _ = vnom_sim
        for row, cycle in ((0, 0), (1, 1), (2, 2), (3, 3)):
            t_mid = (cycle + 0.6) * PERIOD
            assert waves[f"wl{row}"].at(t_mid) > 0.9 * tech.vdd_nominal
