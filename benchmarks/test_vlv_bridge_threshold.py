"""Benchmark: Section 4.1's quantitative claim on VLV reach.

"Earlier simulation [Kruseman 02] also has shown that with a reduced
supply voltage of 1.5 VT, one can detect shorts with five times higher
resistance than can be detected at nominal voltage (4 VT)."

Two independent checks: the calibrated behavioural model's critical-
resistance curve, and the transistor-level 6T-cell bisection (the
retention-upset critical resistance) -- the behavioural curve must be
steeper than flat and the transistor level must show the same direction.
"""

import numpy as np
import pytest

from repro.circuit.technology import CMOS018
from repro.defects.models import BridgeSite
from repro.memory.cell import SixTCell


@pytest.fixture(scope="module")
def r_crit_curve(behavior):
    volts = np.linspace(0.9, 2.1, 13)
    return volts, [
        behavior.bridge_critical_resistance(BridgeSite.CELL_NODE_RAIL,
                                            float(v))
        for v in volts
    ]


def test_threshold_curve_regeneration(benchmark, behavior):
    volts = np.linspace(0.9, 2.1, 13)

    def sweep():
        return [behavior.bridge_critical_resistance(
            BridgeSite.CELL_NODE_RAIL, float(v)) for v in volts]
    result = benchmark(sweep)
    assert len(result) == 13


class TestVlvReach:
    def test_print_curve(self, r_crit_curve):
        volts, rs = r_crit_curve
        print()
        print("Vdd (V)   R_crit (kohm)")
        for v, r in zip(volts, rs):
            print(f"{v:7.2f}   {r / 1e3:10.1f}")

    def test_monotone_decreasing(self, r_crit_curve):
        _, rs = r_crit_curve
        assert all(a > b for a, b in zip(rs, rs[1:]))

    def test_vlv_reach_factor(self, behavior):
        """VLV (1.0 V) vs nominal (1.8 V): the behavioural model's
        calibrated reach factor sits in the literature's ~5x range."""
        r_vlv = behavior.bridge_critical_resistance(
            BridgeSite.CELL_NODE_RAIL, 1.0)
        r_nom = behavior.bridge_critical_resistance(
            BridgeSite.CELL_NODE_RAIL, 1.8)
        assert 4.0 < r_vlv / r_nom < 12.0

    def test_transistor_level_confirms_direction(self):
        """The Spice-like 6T-cell bisection independently shows the
        critical resistance rising as supply falls."""
        cell = SixTCell(CMOS018)
        r_vlv = cell.retention_upset_resistance(1.0, 1, "gnd")
        r_nom = cell.retention_upset_resistance(1.8, 1, "gnd")
        r_max = cell.retention_upset_resistance(1.95, 1, "gnd")
        print(f"\n6T-cell R_crit: VLV {r_vlv:,.0f}  Vnom {r_nom:,.0f}  "
              f"Vmax {r_max:,.0f} ohm")
        assert r_vlv > r_nom > r_max

    def test_reach_grows_steeply_near_threshold(self, behavior):
        """Below ~2 VT the curve blows up -- why the paper's VLV window
        recommendation is 2..2.5 VT (testable) rather than lower."""
        r_09 = behavior.bridge_critical_resistance(
            BridgeSite.CELL_NODE_RAIL, 0.9)
        r_10 = behavior.bridge_critical_resistance(
            BridgeSite.CELL_NODE_RAIL, 1.0)
        r_11 = behavior.bridge_critical_resistance(
            BridgeSite.CELL_NODE_RAIL, 1.1)
        assert (r_09 - r_10) > (r_10 - r_11)
