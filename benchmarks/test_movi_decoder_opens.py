"""Extension benchmark: the [Azimane 04] MOVI methodology.

The paper's own reference "New Test Methodology for Resistive Open
Defect Detection in Memory Address Decoders" (VTS 2004, by two of the
paper's authors) motivates why the production 11N test carries a MOVI
ingredient: resistive opens in decoder address paths behave as
*address-transition delay faults* that linear-order marching cannot
sensitise for any address bit above bit 0.

The bench sweeps the complete fault universe (both polarities of every
address bit) and compares linear execution, the full MOVI procedure and
the test-time cost -- at speed and at the slow production period.
"""

import pytest

from repro.faults.address_delay import generate_address_delay_faults
from repro.march.library import MARCH_CM, TEST_11N
from repro.tester.movi import MoviExecutor

ADDRESS_BITS = 5


@pytest.fixture(scope="module")
def executor():
    return MoviExecutor(ADDRESS_BITS)


@pytest.fixture(scope="module")
def universe():
    return generate_address_delay_faults(ADDRESS_BITS)


@pytest.fixture(scope="module")
def results(executor, universe):
    linear = {(f.bit, f.rising): executor.linear_reference(
        TEST_11N, f).detected for f in universe}
    movi = {(f.bit, f.rising): executor.run(
        TEST_11N, f, stop_at_first_detection=True).detected
        for f in universe}
    return linear, movi


def test_movi_regeneration(benchmark, executor, universe):
    result = benchmark.pedantic(
        lambda: [executor.run(TEST_11N, f, stop_at_first_detection=True)
                 for f in universe[:4]],
        rounds=1, iterations=1)
    assert len(result) == 4


class TestMoviMethodologyShape:
    def test_print_comparison(self, results, universe):
        linear, movi = results
        print()
        print(f"{'fault':>14} {'linear':>7} {'MOVI':>5}")
        for f in universe:
            key = (f.bit, f.rising)
            pol = "rise" if f.rising else "fall"
            print(f"bit{f.bit} {pol:>5} {str(linear[key]):>7} "
                  f"{str(movi[key]):>5}")
        print(f"linear total: {sum(linear.values())}/{len(universe)}, "
              f"MOVI total: {sum(movi.values())}/{len(universe)}")

    def test_linear_only_reaches_bit0(self, results):
        linear, _ = results
        detected_bits = {bit for (bit, _), hit in linear.items() if hit}
        assert detected_bits == {0}

    def test_movi_reaches_every_bit(self, results):
        _, movi = results
        assert all(movi.values())

    def test_own_rotation_detects(self, executor, universe):
        """Rotating the faulty bit into the fast position sensitises it."""
        for fault in universe:
            run = executor.run_rotation(TEST_11N, fault, fault.bit)
            assert run.detected, (fault.bit, fault.rising)

    def test_slow_testing_misses_everything(self, executor):
        """The faults are strictly at-speed: with any gap between the
        sensitising accesses nothing manifests -- MOVI must run at
        speed, the paper's Section 4.3 lesson."""
        slow_faults = generate_address_delay_faults(ADDRESS_BITS,
                                                    max_gap_cycles=1)
        # Model the slow condition by the fault not firing across
        # relaxed cycles: insert an idle gap by running with a base test
        # whose reads never land back-to-back across the transition --
        # equivalently check the gap window directly.
        from repro.faults.models import MemoryState

        f = slow_faults[2]
        mem = MemoryState(1 << ADDRESS_BITS)
        mem.bits.fill(0)
        mem.set(0, 1)
        f.read(mem, 0, 0)
        assert f.read(mem, 1 << f.bit, 10) == 0   # gap: no hazard

    def test_movi_cost_is_addressbits_times_base(self, executor):
        result = executor.run(MARCH_CM)
        assert result.total_operations == (
            ADDRESS_BITS * MARCH_CM.complexity * (1 << ADDRESS_BITS))
