"""Benchmark: paper Figure 7 -- shmoo of Chip-2 (fails only at Vmax+).

Chip-2 passes Vnom and VLV *irrespective of frequency* and fails only at
high supply: the silicon counterpart of the Figure 5/6 decoder-open
simulations.  The shmoo's fail region is a horizontal band at the top.
"""

import numpy as np
import pytest

from repro.defects.models import OpenSite, open_defect
from repro.tester.shmoo import default_period_axis, default_voltage_axis

#: Chip-2's reconstructed defect: a 500 kohm decoder-input open whose
#: detection voltage lands between Vnom and Vmax.
CHIP2_DEFECT = open_defect(OpenSite.DECODER_INPUT, 5e5, cell=9)


@pytest.fixture(scope="module")
def plot(shmoo_runner, small_sram):
    return shmoo_runner.run(small_sram, [CHIP2_DEFECT],
                            default_voltage_axis(),
                            default_period_axis(), "Figure 7: Chip-2")


def test_fig7_regeneration(benchmark, shmoo_runner, small_sram):
    result = benchmark(
        shmoo_runner.run, small_sram, [CHIP2_DEFECT],
        default_voltage_axis(steps=8), default_period_axis(steps=12))
    assert (~result.passed).any()


class TestFigure7Shape:
    def test_render(self, plot):
        print()
        print(plot.render())

    def test_fails_at_and_above_vmax(self, plot):
        for v in (2.0, 2.1, 2.2):
            assert not plot.passes_at(v, 100e-9), v

    def test_passes_vnom_and_vlv(self, plot):
        assert plot.passes_at(1.8, 100e-9)
        assert plot.passes_at(1.0, 100e-9)

    def test_failure_frequency_independent(self, plot):
        """Paper: 'fails only the Vmax test ... irrespective of test
        frequency'."""
        periods = plot.periods
        row_fail = [not plot.passes_at(2.1, float(p)) for p in periods]
        # Fails at every period where the fault-free part would pass.
        fault_free_ok = [plot.min_passing_voltage(float(p)) is not None
                         for p in periods]
        assert all(f for f, ok in zip(row_fail, fault_free_ok) if ok)

    def test_detection_voltage_boundary(self, plot, behavior):
        """The shmoo boundary equals the behavioural detection voltage."""
        v_detect = behavior.decoder_open_detection_voltage(CHIP2_DEFECT)
        volts = plot.voltages
        for v in volts:
            if v < v_detect - 0.05 and v >= 1.0:
                assert plot.passes_at(float(v), 100e-9)
            if v > v_detect + 0.05:
                assert not plot.passes_at(float(v), 100e-9)
