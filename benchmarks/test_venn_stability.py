"""Benchmark: seed-to-seed stability of the Figure 11 structure.

The paper reports one physical lot; our Monte-Carlo stand-in lets us ask
how repeatable the Venn structure is.  The bench runs the full
experiment across seeds and asserts that every *structural* claim of
Figure 11 (VLV-only dominance, empty Vmax∩at-speed and triple regions,
presence of the minor classes in aggregate) is seed-stable even though
the individual counts wander with Poisson noise.
"""

import pytest

from repro.experiment.montecarlo import run_monte_carlo


@pytest.fixture(scope="module")
def result():
    return run_monte_carlo(n_runs=10, n_devices=8000)


def test_stability_regeneration(benchmark):
    res = benchmark.pedantic(run_monte_carlo,
                             kwargs={"n_runs": 3, "n_devices": 2000},
                             rounds=1, iterations=1)
    assert res.n_runs == 3


class TestVennStability:
    def test_print_statistics(self, result):
        print()
        print(result.render())

    def test_vlv_dominance_every_seed(self, result):
        assert result.structural_stability()["vlv_only_dominates"] == 1.0

    def test_empty_regions_every_seed(self, result):
        assert result.structural_stability()[
            "vmax_atspeed_and_triple_empty"] == 1.0

    def test_counts_wander_but_stay_in_scale(self, result):
        """Poisson noise is visible (spread > 0) yet the VLV-only count
        never collapses into the minor-class range."""
        vlv = result.stats["vlv_only"]
        assert vlv.max > vlv.min          # noise is real
        assert vlv.min >= 2 * max(result.stats["vmax_only"].max, 1) - 2

    def test_minor_classes_nonzero_in_aggregate(self, result):
        assert result.stats["vmax_only"].mean > 0.5
        assert result.stats["atspeed_only"].mean > 0.5

    def test_overlaps_rare_but_present_in_aggregate(self, result):
        total_overlaps = (sum(result.stats["vlv_vmax"].counts)
                          + sum(result.stats["vlv_atspeed"].counts))
        assert total_overlaps >= 1
