"""Emit (or validate) the BENCH_frontier.json fast-path benchmark.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_frontier.py
    PYTHONPATH=src python benchmarks/perf/bench_frontier.py --quick
    PYTHONPATH=src python benchmarks/perf/bench_frontier.py \
        --validate BENCH_frontier.json

The default configuration takes seconds; ``--quick`` shrinks the
campaign half to a CI-smoke scale (the emitted schema is identical and
the invocation-reduction floors still apply).  See
``docs/performance.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.runner.atomic import atomic_write_text


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Benchmark the monotone-frontier fast paths: "
                    "frontier campaign sweep and boundary-traced shmoo "
                    "vs their exact equivalents.")
    parser.add_argument("--out", metavar="PATH",
                        default="BENCH_frontier.json",
                        help="output file (default: BENCH_frontier.json)")
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale configuration for smoke runs")
    parser.add_argument("--sites", type=int, default=None,
                        help="override the site-population size of the "
                             "campaign half")
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing benchmark file and "
                             "exit (no benchmark run)")
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.perf.frontier_bench import (
        FrontierBenchConfig,
        run_frontier_benchmark,
        validate_frontier_bench,
    )

    args = _parser().parse_args(argv)
    if args.validate is not None:
        doc = json.loads(Path(args.validate).read_text())
        problems = validate_frontier_bench(doc)
        for problem in problems:
            print(f"BENCH schema: {problem}", file=sys.stderr)
        print(f"{args.validate}: "
              + ("OK" if not problems else f"{len(problems)} problem(s)"))
        return 0 if not problems else 1

    config = (FrontierBenchConfig.quick() if args.quick
              else FrontierBenchConfig())
    if args.sites is not None:
        config = replace(config, sites=args.sites)

    doc = run_frontier_benchmark(config)
    atomic_write_text(args.out, json.dumps(doc, indent=2,
                                       sort_keys=True) + "\n")
    campaign = doc["campaign"]
    shmoo = doc["shmoo"]
    print(f"wrote {args.out}")
    print(f"  campaign (Table-1 sweep): "
          f"{campaign['exact']['model_invocations']} -> "
          f"{campaign['frontier']['model_invocations']} model invocations "
          f"({doc['invocation_reduction_campaign']}x fewer), "
          f"records byte-identical")
    print(f"  batch (same sweep, vectorised): "
          f"{campaign['speedup_batch']}x wall-clock vs exact "
          f"({campaign['batch']['model_invocations']} scalar model "
          f"invocations, cross-checks included), records byte-identical")
    print(f"  shmoo (paper-sized grid): "
          f"{shmoo['exact']['tester_invocations']} -> "
          f"{shmoo['boundary']['tester_invocations']} tester invocations "
          f"({doc['invocation_reduction_shmoo']}x fewer), "
          f"grids identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
