"""Execution-performance benchmarks (serial vs parallel vs cached).

Unlike the sibling ``benchmarks/test_*`` modules -- which check the
reproduction against the paper's *numbers* -- this package measures the
library's own execution layer.  ``bench_campaign.py`` emits
``BENCH_campaign.json``; ``docs/performance.md`` explains how to read
it.
"""
