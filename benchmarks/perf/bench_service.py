"""Emit (or validate) the BENCH_service.json estimator-service benchmark.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_service.py
    PYTHONPATH=src python benchmarks/perf/bench_service.py --quick
    PYTHONPATH=src python benchmarks/perf/bench_service.py \
        --validate BENCH_service.json

Starts a real loopback listener over the shipped CMOS 0.18 um database
and drives it over one keep-alive connection: cold pass (all cache
misses, the estimator computing), warm pass (all hits -- the validator
pins the warm hit rate to exactly 1.0), plus a byte-identity check of
every response against the in-process estimator.  See
``docs/service.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.runner.atomic import atomic_write_text


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Benchmark the estimator service over a live "
                    "loopback listener and pin its cache and "
                    "byte-identity contracts.")
    parser.add_argument("--out", metavar="PATH",
                        default="BENCH_service.json",
                        help="output file (default: BENCH_service.json)")
    parser.add_argument("--quick", action="store_true",
                        help="sub-second configuration for smoke runs")
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing benchmark file and "
                             "exit (no benchmark run)")
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.perf.service_bench import (
        ServiceBenchConfig,
        run_service_benchmark,
        validate_service_bench,
    )

    args = _parser().parse_args(argv)
    if args.validate is not None:
        doc = json.loads(Path(args.validate).read_text())
        problems = validate_service_bench(doc)
        for problem in problems:
            print(f"BENCH schema: {problem}", file=sys.stderr)
        print(f"{args.validate}: "
              + ("OK" if not problems else f"{len(problems)} problem(s)"))
        return 0 if not problems else 1

    config = (ServiceBenchConfig.quick() if args.quick
              else ServiceBenchConfig())
    doc = run_service_benchmark(config)
    atomic_write_text(args.out, json.dumps(doc, indent=2,
                                           sort_keys=True) + "\n")
    cold, warm = doc["cold"], doc["warm"]
    print(f"wrote {args.out}")
    print(f"  cold: {cold['requests']} requests, p50 {cold['p50_ms']}ms "
          f"p99 {cold['p99_ms']}ms ({cold['qps']} req/sec, all misses)")
    print(f"  warm: {warm['requests']} requests, p50 {warm['p50_ms']}ms "
          f"p99 {warm['p99_ms']}ms ({doc['qps']} req/sec, "
          f"hit_rate={doc['warm_hit_rate']})")
    print(f"  identity: {doc['identity']['checked_requests']} response "
          f"bodies byte-identical to the in-process estimator: "
          f"{doc['byte_identical']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
