"""Emit (or validate) the BENCH_campaign.json execution benchmark.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_campaign.py
    PYTHONPATH=src python benchmarks/perf/bench_campaign.py --quick
    PYTHONPATH=src python benchmarks/perf/bench_campaign.py \
        --validate BENCH_campaign.json

The default configuration takes tens of seconds; ``--quick`` shrinks it
to a CI-smoke scale (the emitted schema is identical).  See
``docs/performance.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.runner.atomic import atomic_write_text


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Benchmark campaign execution: serial vs parallel "
                    "vs cached.")
    parser.add_argument("--out", metavar="PATH",
                        default="BENCH_campaign.json",
                        help="output file (default: BENCH_campaign.json)")
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale configuration for smoke runs")
    parser.add_argument("--sites", type=int, default=None,
                        help="override the site-population size")
    parser.add_argument("--workers", type=int, default=None,
                        help="override the requested worker count (the "
                             "cpu-bound workload is clamped to "
                             "min(requested, os.cpu_count()); the "
                             "latency-bound sim workload keeps the "
                             "request)")
    parser.add_argument("--sim-latency", type=float, default=None,
                        help="override the per-site simulator latency (s)")
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing benchmark file and "
                             "exit (no benchmark run)")
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.perf.bench import BenchConfig, run_benchmark, validate_bench

    args = _parser().parse_args(argv)
    if args.validate is not None:
        doc = json.loads(Path(args.validate).read_text())
        problems = validate_bench(doc)
        for problem in problems:
            print(f"BENCH schema: {problem}", file=sys.stderr)
        print(f"{args.validate}: "
              + ("OK" if not problems else f"{len(problems)} problem(s)"))
        return 0 if not problems else 1

    config = BenchConfig.quick() if args.quick else BenchConfig()
    overrides = {
        name: value
        for name, value in (("sites", args.sites),
                            ("workers", args.workers),
                            ("sim_latency", args.sim_latency))
        if value is not None
    }
    if overrides:
        config = replace(config, **overrides)

    doc = run_benchmark(config)
    atomic_write_text(args.out, json.dumps(doc, indent=2,
                                       sort_keys=True) + "\n")
    sim = doc["workloads"]["sim"]
    print(f"wrote {args.out}")
    print(f"  sim workload: {sim['serial']['units_per_sec']} -> "
          f"{sim['parallel']['units_per_sec']} units/s "
          f"({doc['speedup_parallel']}x at "
          f"{doc['config']['workers']} workers)")
    cpu = doc["workloads"]["cpu"]
    clamp_note = (
        f", clamped from {cpu['parallel']['workers_requested']} requested"
        if cpu["workers_clamped"] else "")
    print(f"  cpu workload: {doc['speedup_parallel_cpu_bound']}x at "
          f"{cpu['parallel']['workers']} worker(s){clamp_note} "
          f"(host has {doc['cpu_count']} CPU(s))")
    print(f"  cache hit rate (warm): "
          f"{100 * doc['cache_hit_rate']:.0f} %")
    print(f"  supervision overhead (clean path): "
          f"{100 * doc['supervision_overhead']:+.1f} %")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
