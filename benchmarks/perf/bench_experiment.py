"""Emit (or validate) the BENCH_experiment.json streaming benchmark.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_experiment.py
    PYTHONPATH=src python benchmarks/perf/bench_experiment.py --quick
    PYTHONPATH=src python benchmarks/perf/bench_experiment.py \
        --validate BENCH_experiment.json

The default configuration streams 10^6 devices (tens of seconds);
``--quick`` shrinks every half to a CI-smoke scale (the emitted schema
is identical and the throughput/speedup floors and determinism flags
still apply).  See ``docs/performance.md`` ("Streaming million-device
experiment") for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.runner.atomic import atomic_write_text


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Benchmark the streaming sharded experiment engine "
                    "against the materialise-everything legacy path, "
                    "and pin its determinism contract.")
    parser.add_argument("--out", metavar="PATH",
                        default="BENCH_experiment.json",
                        help="output file (default: "
                             "BENCH_experiment.json)")
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale configuration for smoke runs")
    parser.add_argument("--devices", type=int, default=None,
                        help="override the headline run's device count")
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing benchmark file and "
                             "exit (no benchmark run)")
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.perf.experiment_bench import (
        ExperimentBenchConfig,
        run_experiment_benchmark,
        validate_experiment_bench,
    )

    args = _parser().parse_args(argv)
    if args.validate is not None:
        doc = json.loads(Path(args.validate).read_text())
        problems = validate_experiment_bench(doc)
        for problem in problems:
            print(f"BENCH schema: {problem}", file=sys.stderr)
        print(f"{args.validate}: "
              + ("OK" if not problems else f"{len(problems)} problem(s)"))
        return 0 if not problems else 1

    config = (ExperimentBenchConfig.quick() if args.quick
              else ExperimentBenchConfig())
    if args.devices is not None:
        config = replace(config, devices=args.devices)

    doc = run_experiment_benchmark(config)
    atomic_write_text(args.out, json.dumps(doc, indent=2,
                                           sort_keys=True) + "\n")
    streaming = doc["streaming"]
    memory = doc["memory"]
    legacy = doc["legacy"]
    print(f"wrote {args.out}")
    print(f"  streaming: {streaming['devices']} devices in "
          f"{streaming['seconds']}s "
          f"({doc['devices_per_sec']} devices/sec, "
          f"{streaming['shards']} shards)")
    print(f"  memory: peak {memory['small_peak_bytes']} -> "
          f"{memory['large_peak_bytes']} bytes across a "
          f"{memory['large_devices'] // memory['small_devices']}x "
          f"device-count jump (ratio {memory['peak_ratio']}, "
          f"independent={doc['memory_independent']})")
    print(f"  vs legacy at N={legacy['devices']}: "
          f"{doc['speedup_vs_legacy']}x wall-clock, "
          f"scheme='legacy' payload byte-identical")
    print(f"  invariance: shard_invariant={doc['shard_invariant']} "
          f"worker_invariant={doc['worker_invariant']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
