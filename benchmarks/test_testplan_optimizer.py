"""Extension benchmark: the paper's closing recommendation, optimised.

"It is recommended to have the best test algorithms combined with
specific stress conditions (VLV at low frequency, Vnom and Vmax at high
frequency) to reduce test escapes and deliver high quality products."

The bench computes the full time/DPM Pareto front over stress-condition
subsets and checks that the paper's recommendation falls out of the
optimisation: the stress conditions (VLV, Vmax, at-speed) form the
efficient set, the non-stress corners are dominated, and VLV is the
single highest-value condition.
"""

import pytest

from repro.circuit.technology import CMOS018
from repro.core.testplan import JointCoverageTable, TestPlanOptimizer
from repro.march.library import TEST_11N
from repro.memory.geometry import VEQTOR4_INSTANCE
from repro.stress import production_conditions


@pytest.fixture(scope="module")
def table():
    return JointCoverageTable(VEQTOR4_INSTANCE, CMOS018,
                              production_conditions(CMOS018),
                              n_samples=3000)


@pytest.fixture(scope="module")
def optimizer(table):
    return TestPlanOptimizer(table, TEST_11N)


def test_testplan_regeneration(benchmark, optimizer):
    front = benchmark(optimizer.pareto_front)
    assert front


class TestPlanShape:
    def test_print_front(self, optimizer):
        print()
        print("time/DPM Pareto front over condition subsets:")
        for plan in optimizer.pareto_front():
            print(f"  {plan}")

    def test_stress_conditions_form_the_front(self, optimizer):
        """Vmin and Vnom never appear in an efficient plan."""
        for plan in optimizer.pareto_front():
            assert not ({"Vmin", "Vnom"} & set(plan.conditions))

    def test_best_plan_is_the_papers_combination(self, optimizer):
        best = min(optimizer.all_plans(), key=lambda p: p.dpm)
        assert set(best.conditions) >= {"VLV", "Vmax", "at-speed"}

    def test_vlv_best_single_voltage_condition(self, table):
        cov = {n: table.subset_coverage((n,))
               for n in ("VLV", "Vmin", "Vnom", "Vmax")}
        assert max(cov, key=cov.get) == "VLV"

    def test_adding_vlv_always_helps(self, table):
        """Marginal value of VLV on top of any other subset is positive
        -- the 'unavoidable' condition of Section 3."""
        import itertools

        others = [n for n in table.condition_names if n != "VLV"]
        for r in range(0, len(others) + 1):
            for subset in itertools.combinations(others, r):
                with_vlv = table.subset_coverage(subset + ("VLV",))
                without = table.subset_coverage(subset)
                assert with_vlv > without

    def test_time_quality_tradeoff_is_real(self, optimizer):
        """Better plans cost more tester seconds (VLV runs at 10 MHz):
        the trade-off the paper's conclusion discusses."""
        front = optimizer.pareto_front()
        assert front[-1].test_time > front[0].test_time
        assert front[-1].dpm < front[0].dpm

    def test_dpm_target_query(self, optimizer):
        plans = optimizer.all_plans()
        mid_target = sorted(p.dpm for p in plans)[len(plans) // 2]
        plan = optimizer.cheapest_meeting(mid_target)
        assert plan is not None
        assert plan.dpm <= mid_target
        # No faster feasible plan exists.
        for other in plans:
            if other.dpm <= mid_target:
                assert other.test_time >= plan.test_time - 1e-12
