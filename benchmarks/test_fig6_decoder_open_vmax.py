"""Benchmark: paper Figure 6 -- the same decoder open detected at Vmax.

Same faulty netlist and patterns as the Figure 5 bench, supply raised to
Vmax: the dual-select window is unchanged (pure RC), but the disturb
current through the wrongly-selected cells grows superlinearly with
supply, so the victim flip time drops *below* the window -- the defect
propagates to the outputs during a unique clock cycle, exactly the
paper's observation.
"""

import pytest

from repro.analysis.figures import render_waveforms
from benchmarks.test_fig5_decoder_open_vnom import (
    FIG56_DEFECT,
    run_decoder_sim,
)
from repro.march.library import TEST_11N
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram
from repro.tester.bitmap import BitmapAnalyzer


@pytest.fixture(scope="module")
def vmax_sim(tech):
    return run_decoder_sim(tech, tech.vdd_max)


def test_fig6_regeneration(benchmark, tech):
    _, window = benchmark.pedantic(
        run_decoder_sim, args=(tech, tech.vdd_max, 0.25e-9),
        rounds=1, iterations=1)
    assert window > 0.0


class TestFigure6Shape:
    def test_render_waveforms(self, vmax_sim, tech):
        waves, window = vmax_sim
        print()
        print(render_waveforms(waves, tech.vdd_max,
                               title="Figure 6: decoder open @ Vmax"))
        print(f"dual-select hazard window: {window * 1e9:.2f} ns")

    def test_detected_at_vmax(self, vmax_sim, behavior, tech):
        """The window now exceeds the flip time: detection."""
        _, window = vmax_sim
        assert window > behavior.decoder_disturb_flip_time(tech.vdd_max)

    def test_window_voltage_independent(self, vmax_sim, tech):
        """The hazard window itself barely moves between Vnom and Vmax
        (it is an RC effect); only the disturb susceptibility changes."""
        from benchmarks.test_fig5_decoder_open_vnom import run_decoder_sim
        _, w_nom = run_decoder_sim(tech, tech.vdd_nominal, dt=0.25e-9)
        _, w_max = run_decoder_sim(tech, tech.vdd_max, dt=0.25e-9)
        assert w_max == pytest.approx(w_nom, abs=0.5e-9)

    def test_unique_failing_cycle_at_outputs(self, tester, conditions,
                                             behavior):
        """Behaviour level: the manifested hazard produces wrong data at
        the outputs in specific march-element cycles (the paper's
        'detected during a unique clock cycle at q1 and q2')."""
        geom = MemoryGeometry(8, 2, 4)
        sram = Sram(geom, tester.behavior.tech)
        defect = FIG56_DEFECT
        result = tester.test_device(sram, [defect], TEST_11N,
                                    conditions["Vmax"], quick=False)
        assert not result.passed
        diag = BitmapAnalyzer(geom, TEST_11N).diagnose(result.fails)
        # Address-pair signature, specific march elements, reading '0'.
        assert len(diag.failing_cells) <= 2
        assert diag.element_signatures
