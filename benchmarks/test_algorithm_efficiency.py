"""Extension benchmark: the efficiency frontier behind the 11N choice.

The paper picked an 11N production test "a variation of MATS++,
March C- and MOVI" and closes by recommending "the best test algorithms
combined with specific stress conditions".  This bench computes the
coverage-per-operation frontier over the library's published tests and
shows the production test's position on it -- plus the complementary
weak-write screen comparison (the DFT route to cell-stability defects).
"""

import numpy as np
import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.distribution import default_open_distribution
from repro.ifa.extraction import IfaExtractor
from repro.march.compare import efficiency_frontier, render_scores, score_tests
from repro.march.library import (
    MARCH_B,
    MARCH_CM,
    MARCH_SS,
    MARCH_Y,
    MATS,
    MATS_PLUS_PLUS,
    TEST_11N,
)
from repro.memory.geometry import VEQTOR4_INSTANCE
from repro.stress import production_conditions
from repro.tester.weakwrite import WeakWriteTester

TESTS = (MATS, MATS_PLUS_PLUS, MARCH_Y, MARCH_CM, TEST_11N, MARCH_B,
         MARCH_SS)


@pytest.fixture(scope="module")
def scores():
    return score_tests(TESTS, n_cells=6)


def test_efficiency_regeneration(benchmark):
    result = benchmark.pedantic(
        score_tests, args=((MATS, MARCH_CM), ("SAF", "TF"), 6),
        rounds=1, iterations=1)
    assert len(result) == 2


class TestEfficiencyFrontier:
    def test_print_table(self, scores):
        print()
        print(render_scores(scores))
        print("frontier:",
              [s.test_name for s in efficiency_frontier(scores)])

    def test_11n_on_frontier(self, scores):
        frontier = {s.test_name for s in efficiency_frontier(scores)}
        assert "11N" in frontier

    def test_11n_dominates_march_cm(self, scores):
        """One extra op per cell buys the dynamic (w-r) coverage that
        March C- lacks entirely."""
        by_name = {s.test_name: s for s in scores}
        assert by_name["11N"].score > by_name["March C-"].score
        assert by_name["11N"].complexity == by_name["March C-"].complexity + 1

    def test_march_ss_dominated(self, scores):
        """Double the ops of 11N without more coverage on this mix."""
        by_name = {s.test_name: s for s in scores}
        assert by_name["March SS"].complexity == 2 * by_name["11N"].complexity
        assert by_name["March SS"].score <= by_name["11N"].score + 1e-9


class TestWeakWriteComplement:
    @pytest.fixture(scope="class")
    def pullup_population(self):
        extractor = IfaExtractor(VEQTOR4_INSTANCE)
        rng = np.random.default_rng(11)
        dist = default_open_distribution()
        opens = extractor.sample_opens(
            800, rng, resistance_sampler=lambda r: dist.sample(r, 1)[0])
        from repro.defects.models import OpenSite
        return [d for d in opens if d.site is OpenSite.CELL_PULLUP]

    def test_wwtm_catches_vlv_band_at_nominal(self, pullup_population):
        """The weak-write screen reaches (part of) the VLV-only pull-up
        band without a voltage corner -- the DFT trade the industry
        made where VLV test time hurt."""
        wwtm = WeakWriteTester(CMOS018)
        behavior = DefectBehaviorModel(CMOS018)
        vlv = production_conditions(CMOS018)["VLV"]
        vlv_caught = [d for d in pullup_population
                      if behavior.fails_condition(d, vlv)]
        assert vlv_caught
        overlap = sum(1 for d in vlv_caught if wwtm.detects(d))
        assert overlap / len(vlv_caught) > 0.5

    def test_wwtm_cannot_replace_stress_suite(self, pullup_population):
        """...but WWTM alone misses every periphery/timing class."""
        from repro.defects.models import OpenSite, open_defect

        wwtm = WeakWriteTester(CMOS018)
        assert not wwtm.detects(open_defect(OpenSite.DECODER_INPUT, 5e5))
        assert not wwtm.detects(open_defect(OpenSite.BITLINE_SEGMENT, 3e6))
