"""Extension benchmark: Iddq testing vs VLV ([Kruseman 02]).

The paper's Section 4.1 builds on Kruseman's comparison of Iddq and
very-low-voltage testing.  This bench reproduces the comparison over the
library's defect population: at the 0.18 um corner Iddq is a respectable
bridge screen, opens are invisible to it, and as background leakage
grows (scaled technology / hot testing) its reach collapses while VLV's
does not -- the reason the paper's generation leans on VLV.
"""

import numpy as np
import pytest

from repro.circuit.technology import CMOS013, CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.distribution import (
    default_bridge_distribution,
    default_open_distribution,
)
from repro.ifa.extraction import IfaExtractor
from repro.memory.geometry import VEQTOR4_INSTANCE
from repro.stress import production_conditions
from repro.tester.iddq import IddqSettings, IddqTester


@pytest.fixture(scope="module")
def populations():
    extractor = IfaExtractor(VEQTOR4_INSTANCE)
    rng = np.random.default_rng(42)
    bdist = default_bridge_distribution()
    odist = default_open_distribution()
    bridges = extractor.sample_bridges(
        1500, rng, resistance_sampler=lambda r: bdist.sample(r, 1)[0])
    opens = extractor.sample_opens(
        500, rng, resistance_sampler=lambda r: odist.sample(r, 1)[0])
    return bridges, opens


@pytest.fixture(scope="module")
def iddq():
    return IddqTester(CMOS018, VEQTOR4_INSTANCE)


@pytest.fixture(scope="module")
def vlv_coverage(populations):
    behavior = DefectBehaviorModel(CMOS018)
    vlv = production_conditions(CMOS018)["VLV"]
    bridges, _ = populations
    return np.mean([behavior.fails_condition(d, vlv) for d in bridges])


def test_iddq_regeneration(benchmark, populations, iddq):
    bridges, _ = populations
    cov = benchmark(iddq.coverage, bridges[:500])
    assert 0.0 <= cov <= 1.0


class TestIddqVsVlvShape:
    def test_print_comparison(self, populations, iddq, vlv_coverage):
        bridges, opens = populations
        print()
        print(f"bridge coverage:  Iddq {100 * iddq.coverage(bridges):5.1f} %"
              f"   VLV {100 * vlv_coverage:5.1f} %")
        print(f"open coverage:    Iddq {100 * iddq.coverage(opens):5.1f} %"
              "   (opens draw no quiescent current)")
        print(f"Iddq reach @25C: {iddq.detection_threshold(25.0) / 1e3:.0f}"
              f" kohm;  @85C: {iddq.detection_threshold(85.0) / 1e3:.0f}"
              " kohm")

    def test_iddq_decent_on_bridges_at_018(self, populations, iddq):
        bridges, _ = populations
        assert iddq.coverage(bridges) > 0.5

    def test_iddq_blind_to_opens(self, populations, iddq):
        _, opens = populations
        assert iddq.coverage(opens) == 0.0

    def test_iddq_competitive_at_018um(self, populations, iddq,
                                       vlv_coverage):
        """[Kruseman 02]'s finding at this generation: Iddq and VLV are
        close on the bulk bridge population."""
        bridges, _ = populations
        assert abs(iddq.coverage(bridges) - vlv_coverage) < 0.1

    def test_vlv_owns_the_high_ohmic_tail(self, populations, iddq):
        """The soft defects the paper worries about: bridges above the
        Iddq reach that VLV still detects."""
        behavior = DefectBehaviorModel(CMOS018)
        vlv = production_conditions(CMOS018)["VLV"]
        bridges, _ = populations
        ceiling = iddq.detection_threshold()
        tail = [d for d in bridges if d.resistance > 1.2 * ceiling]
        assert tail, "population should carry a high-ohmic tail"
        assert iddq.coverage(tail) == 0.0
        vlv_tail = np.mean([behavior.fails_condition(d, vlv) for d in tail])
        assert vlv_tail > 0.4

    def test_scaling_collapses_iddq_not_vlv(self, populations):
        """At a leaky 0.13 um-style corner Iddq's detectable-resistance
        ceiling drops by orders of magnitude; VLV's critical resistance
        is a drive-strength ratio and survives."""
        bridges, _ = populations
        leaky = IddqTester(CMOS013, VEQTOR4_INSTANCE,
                           IddqSettings(leakage_per_cell_25c=2e-9))
        clean = IddqTester(CMOS018, VEQTOR4_INSTANCE)
        assert (leaky.detection_threshold()
                < clean.detection_threshold() / 50.0)
        assert leaky.coverage(bridges) < clean.coverage(bridges) - 0.15

    def test_hot_testing_hurts_iddq(self, iddq):
        assert (iddq.detection_threshold(85.0)
                < iddq.detection_threshold(25.0))
