"""Benchmark: paper Figure 8 -- resistive open detection vs frequency.

"Testing at 50 MHz a memory that operates at 100 MHz will detect
resistive open defects above 4 Mohm ... all below 4 Mohm escape.  At
100 MHz ... below 1.5 Mohm still escape.  Hence it is recommended to
test at even relatively higher frequency than the specified speed."

The bench sweeps the detectable-resistance floor over frequency and
verifies both anchors, the monotone shape, and the escape-band
behaviour with actual defect instances.
"""

import numpy as np
import pytest

from repro.analysis.figures import render_frequency_curve
from repro.defects.models import OpenSite, open_defect
from repro.stress import StressCondition

FREQUENCIES = np.array([25e6, 40e6, 50e6, 66e6, 100e6, 150e6, 200e6])


@pytest.fixture(scope="module")
def thresholds(behavior):
    return [behavior.open_detection_threshold(1.0 / f) for f in FREQUENCIES]


def test_fig8_regeneration(benchmark, behavior):
    def sweep():
        return [behavior.open_detection_threshold(1.0 / f)
                for f in FREQUENCIES]
    result = benchmark(sweep)
    assert len(result) == len(FREQUENCIES)


class TestFigure8Shape:
    def test_render(self, thresholds):
        print()
        print(render_frequency_curve(FREQUENCIES, thresholds))

    def test_paper_anchor_50mhz(self, behavior):
        assert behavior.open_detection_threshold(20e-9) == pytest.approx(
            4.0e6, rel=0.05)

    def test_paper_anchor_100mhz(self, behavior):
        assert behavior.open_detection_threshold(10e-9) == pytest.approx(
            1.5e6, rel=0.05)

    def test_monotone_decreasing(self, thresholds):
        finite = [t for t in thresholds if t > 0]
        assert all(a > b for a, b in zip(finite, finite[1:]))

    def test_higher_than_specified_speed_helps(self, behavior):
        """Testing at 200 MHz catches opens that escape at 100 MHz --
        the paper's closing recommendation."""
        assert (behavior.open_detection_threshold(5e-9)
                < behavior.open_detection_threshold(10e-9))

    def test_escape_band_with_defect_instances(self, behavior):
        """A 2 Mohm open escapes the 50 MHz test, caught at 100 MHz;
        a 5 Mohm open is caught by both; 1 Mohm escapes both."""
        d_2m = open_defect(OpenSite.BITLINE_SEGMENT, 2e6)
        d_5m = open_defect(OpenSite.BITLINE_SEGMENT, 5e6)
        d_1m = open_defect(OpenSite.BITLINE_SEGMENT, 1e6)
        at_50 = StressCondition("50MHz", 1.8, 20e-9)
        at_100 = StressCondition("100MHz", 1.8, 10e-9)
        assert not behavior.fails_condition(d_2m, at_50)
        assert behavior.fails_condition(d_2m, at_100)
        assert behavior.fails_condition(d_5m, at_50)
        assert behavior.fails_condition(d_5m, at_100)
        assert not behavior.fails_condition(d_1m, at_50)
        assert not behavior.fails_condition(d_1m, at_100)

    def test_slow_test_catches_almost_nothing(self, behavior):
        """At the 10 MHz production-slow period only enormous opens
        fail -- why at-speed is a distinct stress condition."""
        thr = behavior.open_detection_threshold(100e-9)
        assert thr > 20e6
