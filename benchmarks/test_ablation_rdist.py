"""Ablation: sensitivity of defect coverage / DPM to the fab
resistance distribution.

Table 1's defect coverage depends on the (substituted) fab R
distribution.  This ablation sweeps the soft-bridge tail weight and
shows which conclusions are robust (VLV best, order-of-magnitude gap)
and which move (absolute DPM) -- exactly what DESIGN.md promises to
document about the substitution.
"""

import pytest

from repro.core.flow import MemoryTestFlow
from repro.core.estimator import FaultCoverageEstimator
from repro.defects.distribution import (
    LognormalComponent,
    ResistanceDistribution,
)
from repro.memory.geometry import VEQTOR4_INSTANCE


def tail_distribution(tail_weight: float) -> ResistanceDistribution:
    return ResistanceDistribution([
        LognormalComponent(1.0 - tail_weight, 50.0, 1.2),
        LognormalComponent(tail_weight, 8.0e3, 2.0),
    ], name=f"tail={tail_weight:.2f}")


@pytest.fixture(scope="module")
def flow_result():
    return MemoryTestFlow(VEQTOR4_INSTANCE, n_sites=3000).run()


@pytest.fixture(scope="module")
def reports(flow_result):
    out = {}
    for tail in (0.05, 0.15, 0.25, 0.40):
        est = FaultCoverageEstimator(
            flow_result.database,
            bridge_distribution=tail_distribution(tail))
        out[tail] = est.estimate(VEQTOR4_INSTANCE, "bridge")
    return out


def test_rdist_ablation_regeneration(benchmark, flow_result):
    def run():
        est = FaultCoverageEstimator(
            flow_result.database, bridge_distribution=tail_distribution(0.2))
        return est.estimate(VEQTOR4_INSTANCE, "bridge")
    report = benchmark(run)
    assert report.estimates


class TestRdistSensitivity:
    def test_print_sweep(self, reports):
        print()
        print(f"{'tail':>6} {'DC(VLV)%':>9} {'DC(Vmax)%':>10} "
              f"{'Vmax/VLV DPM':>13}")
        for tail, rep in reports.items():
            print(f"{tail:>6.2f} "
                  f"{100 * rep.by_condition('VLV').defect_coverage:>9.2f} "
                  f"{100 * rep.by_condition('Vmax').defect_coverage:>10.2f} "
                  f"{rep.dpm_ratio('Vmax', 'VLV'):>12.1f}x")

    def test_vlv_best_under_every_distribution(self, reports):
        """Robust conclusion: the condition ranking never flips."""
        for rep in reports.values():
            assert rep.best_condition().condition == "VLV"

    def test_gap_stays_well_above_unity(self, reports):
        for rep in reports.values():
            assert rep.dpm_ratio("Vmax", "VLV") > 3.0

    def test_heavier_tail_raises_all_escape_rates(self, reports):
        """More high-ohmic bridges -> more escapes at every condition;
        the relative gap narrows slightly (the deepest tail eventually
        escapes even VLV) but stays near an order of magnitude."""
        dpms = [reports[t].by_condition("Vmax").dpm for t in sorted(reports)]
        assert all(a < b for a, b in zip(dpms, dpms[1:]))
        ratios = [reports[t].dpm_ratio("Vmax", "VLV")
                  for t in sorted(reports)]
        assert all(r > 5.0 for r in ratios)

    def test_absolute_dpm_moves_with_distribution(self, reports):
        """Non-robust (documented): absolute DPM depends strongly on the
        substituted distribution."""
        dpms = [rep.by_condition("Vmax").dpm for rep in reports.values()]
        assert max(dpms) > 2.0 * min(dpms)
