"""Ablation: estimator scaling with memory geometry.

The estimator's whole point is answering geometry questions without
re-running IFA: the paper's intro motivates it with growing embedded
memory sizes endangering SoC-level DPM.  This ablation sweeps the four
design parameters (#X, #Y, #B, #Z) and verifies the scaling laws.
"""

import pytest

from repro.core.estimator import FaultCoverageEstimator
from repro.core.flow import MemoryTestFlow
from repro.memory.geometry import MemoryGeometry

GEOMETRIES = {
    "64 Kb": MemoryGeometry(256, 8, 32),
    "256 Kb (Veqtor4)": MemoryGeometry(512, 16, 32),
    "1 Mb": MemoryGeometry(1024, 32, 32),
    "4 Mb": MemoryGeometry(2048, 64, 32),
    "1 Mb x 4 blocks": MemoryGeometry(1024, 32, 32, blocks=4),
}


@pytest.fixture(scope="module")
def estimator():
    return MemoryTestFlow(MemoryGeometry(512, 16, 32),
                          n_sites=3000).run().estimator


@pytest.fixture(scope="module")
def reports(estimator):
    return {name: estimator.estimate(g, "bridge")
            for name, g in GEOMETRIES.items()}


def test_geometry_ablation_regeneration(benchmark, estimator):
    report = benchmark(estimator.estimate, MemoryGeometry(1024, 32, 32),
                       "bridge")
    assert report.estimates


class TestGeometryScaling:
    def test_print_sweep(self, reports):
        print()
        print(f"{'memory':>18} {'yield %':>8} {'DPM(VLV)':>9} "
              f"{'DPM(Vmax)':>10}")
        for name, rep in reports.items():
            print(f"{name:>18} {100 * rep.yield_fraction:>8.2f} "
                  f"{rep.by_condition('VLV').dpm:>9.1f} "
                  f"{rep.by_condition('Vmax').dpm:>10.1f}")

    def test_yield_falls_with_size(self, reports):
        """Y = exp(-A D0): the paper's equation (2)."""
        y = [reports[k].yield_fraction
             for k in ("64 Kb", "256 Kb (Veqtor4)", "1 Mb", "4 Mb")]
        assert all(a > b for a, b in zip(y, y[1:]))

    def test_dpm_grows_with_size(self, reports):
        """Bigger memory, same coverage -> more escapes: why memory
        dominance makes stress testing urgent (paper Section 1)."""
        dpm = [reports[k].by_condition("VLV").dpm
               for k in ("64 Kb", "256 Kb (Veqtor4)", "1 Mb", "4 Mb")]
        assert all(a < b for a, b in zip(dpm, dpm[1:]))

    def test_blocks_multiply_area(self, reports, estimator):
        one = reports["1 Mb"]
        four = reports["1 Mb x 4 blocks"]
        assert four.yield_fraction == pytest.approx(
            one.yield_fraction ** 4, rel=1e-6)

    def test_ranking_invariant_across_sizes(self, reports):
        """The stress-condition conclusion is geometry independent."""
        for rep in reports.values():
            assert rep.best_condition().condition == "VLV"
            assert rep.dpm_ratio("Vmax", "VLV") > 3.0

    def test_coverage_independent_of_size(self, reports):
        """Fault coverage is a per-defect statistic; only yield/DPM
        scale with the geometry."""
        dcs = [rep.by_condition("VLV").defect_coverage
               for rep in reports.values()]
        assert max(dcs) - min(dcs) < 1e-9
