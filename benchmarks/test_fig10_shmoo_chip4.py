"""Benchmark: paper Figure 10 -- shmoo of Chip-4 (voltage-dependent
timing failure).

"In the case of Chip-4 ... the delay is also voltage dependent.  As the
supply voltage is lowered, the pass-fail margin ... reduces; this is a
similar observation to what happens when there is a delay fault in
random logic.  Hence ... the defect in Chip-4 may be present in the
periphery of the memory and not in the matrix."

A periphery-path open: the added delay rides on gate delay, so the
boundary slants -- longer passing periods needed at lower supply.
"""

import numpy as np
import pytest

from repro.defects.models import OpenSite, open_defect

#: Chip-4's reconstructed defect: 6 Mohm open in a periphery path
#: (12 ns of gate-delay-scaled added delay: fails the 15 ns at-speed
#: condition at nominal supply, passes everything slower).
CHIP4_DEFECT = open_defect(OpenSite.PERIPHERY_PATH, 6e6, cell=7)

VOLTS = np.linspace(1.3, 2.2, 10)
PERIODS = np.linspace(6e-9, 40e-9, 35)


@pytest.fixture(scope="module")
def plot(shmoo_runner, small_sram):
    return shmoo_runner.run(small_sram, [CHIP4_DEFECT], VOLTS, PERIODS,
                            "Figure 10: Chip-4")


def test_fig10_regeneration(benchmark, shmoo_runner, small_sram):
    result = benchmark(shmoo_runner.run, small_sram, [CHIP4_DEFECT],
                       VOLTS[::2], PERIODS[::4])
    assert (~result.passed).any()


class TestFigure10Shape:
    def test_render(self, plot):
        print()
        print(plot.render())

    def test_boundary_not_vertical(self, plot):
        """Unlike Chip-3, the boundary moves with supply."""
        assert not plot.boundary_is_vertical()

    def test_margin_shrinks_at_low_voltage(self, plot):
        """The paper's random-logic-delay-fault signature."""
        boundaries = {float(v): plot.min_passing_period(float(v))
                      for v in (1.4, 1.8, 2.1)}
        assert boundaries[1.4] > boundaries[1.8] > boundaries[2.1]
        # And the voltage dependence is strong (>20 % across the range).
        assert boundaries[1.4] > 1.2 * boundaries[2.1]

    def test_atspeed_only_class(self, plot, conditions, shmoo_runner,
                                small_sram):
        """Passes the slow-period suite; fails the at-speed condition."""
        from repro.tester.shmoo import default_period_axis, default_voltage_axis
        wide = shmoo_runner.run(small_sram, [CHIP4_DEFECT],
                                default_voltage_axis(),
                                default_period_axis())
        for name in ("VLV", "Vmin", "Vnom", "Vmax"):
            cond = conditions[name]
            assert wide.passes_at(cond.vdd, cond.period), name
        atspeed = conditions["at-speed"]
        assert not plot.passes_at(atspeed.vdd, atspeed.period)

    def test_distinguishable_from_chip3(self, plot, shmoo_runner,
                                        small_sram):
        """The diagnosis the paper draws: Chip-3 (matrix, vertical) vs
        Chip-4 (periphery, slanted) are structurally distinguishable
        from their shmoos alone."""
        from benchmarks.test_fig9_shmoo_chip3 import CHIP3_DEFECT
        chip3 = shmoo_runner.run(small_sram, [CHIP3_DEFECT], VOLTS, PERIODS)
        assert chip3.boundary_is_vertical()
        assert not plot.boundary_is_vertical()
