"""Ablation: march algorithm choice x stress condition.

The paper's recommendation is "the best test algorithms combined with
specific stress conditions".  This ablation separates the two axes:

* functional fault coverage of the classical tests (algorithm axis),
* resistive-defect coverage under stress conditions (condition axis) --
  showing that even a strong algorithm (March SS, 22N) cannot buy back
  the coverage a missing stress condition loses, while a cheap algorithm
  (MATS++) under VLV beats an expensive one at Vnom for bridges.
"""

import pytest

from repro.analysis.tables import render_coverage_matrix
from repro.defects.models import BridgeSite, bridge
from repro.faults.coverage import coverage_matrix
from repro.faults.simulator import FunctionalFaultSimulator
from repro.march.library import (
    MARCH_CM,
    MARCH_SS,
    MATS_PLUS_PLUS,
    TEST_11N,
)

TESTS = (MATS_PLUS_PLUS, MARCH_CM, TEST_11N, MARCH_SS)
CLASSES = ("SAF", "TF", "AF", "CFin", "CFst", "DRDF", "dRDF")


@pytest.fixture(scope="module")
def matrix():
    return coverage_matrix(TESTS, CLASSES, n_cells=8)


def test_ablation_regeneration(benchmark):
    result = benchmark.pedantic(
        coverage_matrix, args=(TESTS, ("SAF", "TF"), 6),
        rounds=1, iterations=1)
    assert result


class TestAlgorithmAxis:
    def test_print_matrix(self, matrix):
        print()
        print(render_coverage_matrix(matrix))

    def test_stronger_tests_dominate(self, matrix):
        """Coverage never decreases going MATS++ -> March C- -> March SS
        on the static classes."""
        for fc in ("SAF", "TF", "AF", "CFin", "CFst"):
            assert (matrix["MATS++"][fc].coverage
                    <= matrix["March C-"][fc].coverage + 1e-9)
            assert (matrix["March C-"][fc].coverage
                    <= matrix["March SS"][fc].coverage + 1e-9)

    def test_11n_close_to_march_cm_at_similar_cost(self, matrix):
        """The production 11N (11N ops) trades little static coverage
        against March C- (10N) while adding w-r at-speed pairs."""
        for fc in ("SAF", "TF", "AF"):
            assert matrix["11N"][fc].coverage == pytest.approx(
                matrix["March C-"][fc].coverage)

    def test_dynamic_faults_need_read_after_write(self, matrix):
        """dRDF: 11N's r-after-w elements detect what March C- misses."""
        assert (matrix["11N"]["dRDF"].coverage
                > matrix["March C-"]["dRDF"].coverage)


class TestConditionAxisBeatsAlgorithmAxis:
    def test_cheap_test_at_vlv_beats_expensive_at_vnom(self, behavior,
                                                       conditions):
        """For a high-ohmic bridge population, ANY functional test at
        Vnom scores zero while ANY at VLV scores full -- the algorithm
        cannot substitute for the stress condition."""
        defects = [bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=i)
                   for i in range(20)]
        vlv_detect = sum(behavior.fails_condition(d, conditions["VLV"])
                         for d in defects)
        vnom_detect = sum(behavior.fails_condition(d, conditions["Vnom"])
                          for d in defects)
        assert vlv_detect == len(defects)
        assert vnom_detect == 0

    def test_detected_bridge_caught_by_both_algorithms(self, behavior,
                                                       conditions):
        """Once the stress condition manifests the defect, even the
        6N MATS++ detects it -- stress does the hard part."""
        from repro.defects.injection import to_functional_fault

        d = bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=3)
        m = behavior.manifestation(d, conditions["VLV"])
        sim = FunctionalFaultSimulator(8)
        for test in (MATS_PLUS_PLUS, MARCH_SS):
            fault = to_functional_fault(m, n_cells=8)
            assert sim.detects(test, fault), test.name
