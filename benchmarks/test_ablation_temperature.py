"""Ablation: temperature as a stress axis ([Schanstra 99]).

The paper's stress conditions are voltage and frequency; the earlier
industrial study it cites ([Schanstra 99], "Industrial Evaluation of
Stress Combinations for March Tests applied to SRAMs") adds temperature.
This ablation exercises the library's temperature model:

* cold testing widens the VLV reach (higher VT -> weaker restore),
* hot testing tightens timing slack (mobility) -> better at-speed
  detection of delay opens,
* hot testing accelerates leakage -> weaker pull-up opens already fail
  retention.
"""

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import BridgeSite, OpenSite, open_defect
from repro.stress import StressCondition

COLD, ROOM, HOT = -40.0, 25.0, 85.0


@pytest.fixture(scope="module")
def behavior():
    return DefectBehaviorModel(CMOS018)


def test_temperature_regeneration(benchmark, behavior):
    def sweep():
        return [
            behavior.bridge_critical_resistance(
                BridgeSite.CELL_NODE_RAIL, 1.0, temperature=t)
            for t in (COLD, ROOM, HOT)
        ]
    rs = benchmark(sweep)
    assert len(rs) == 3


class TestTemperatureShape:
    def test_print_sweep(self, behavior):
        print()
        print(f"{'T (C)':>6} {'VLV rail R_crit (kohm)':>24}")
        for t in (COLD, ROOM, HOT):
            r = behavior.bridge_critical_resistance(
                BridgeSite.CELL_NODE_RAIL, 1.0, temperature=t)
            print(f"{t:>6.0f} {r / 1e3:>24.0f}")

    def test_cold_widens_vlv_reach(self, behavior):
        """Higher VT at cold -> the divider loses earlier -> larger
        critical resistance at VLV."""
        r_cold = behavior.bridge_critical_resistance(
            BridgeSite.CELL_NODE_RAIL, 1.0, temperature=COLD)
        r_room = behavior.bridge_critical_resistance(
            BridgeSite.CELL_NODE_RAIL, 1.0, temperature=ROOM)
        r_hot = behavior.bridge_critical_resistance(
            BridgeSite.CELL_NODE_RAIL, 1.0, temperature=HOT)
        assert r_cold > r_room > r_hot
        assert r_cold > 1.3 * r_hot

    def test_hot_tightens_atspeed_slack(self, behavior):
        """A periphery open that passes at-speed at room temperature
        fails it hot (delay grows with temperature)."""
        d = open_defect(OpenSite.PERIPHERY_PATH, 5.2e6)
        room = StressCondition("as-room", 1.8, 15e-9, temperature=ROOM)
        hot = StressCondition("as-hot", 1.8, 15e-9, temperature=HOT)
        assert not behavior.fails_condition(d, room)
        assert behavior.fails_condition(d, hot)

    def test_hot_exposes_weaker_pullup_opens(self, behavior):
        """Retention: leakage doubles every ~20 K, so a pull-up open
        below the room-temperature threshold fails when hot."""
        d = open_defect(OpenSite.CELL_PULLUP, 0.8e6)
        room = StressCondition("vlv-room", 1.0, 100e-9, temperature=ROOM)
        hot = StressCondition("vlv-hot", 1.0, 100e-9, temperature=HOT)
        assert not behavior.fails_condition(d, room)
        assert behavior.fails_condition(d, hot)

    def test_room_temperature_is_the_calibration_point(self, behavior):
        """At 25 C the temperature model is exactly neutral (the paper's
        experiments ran at room temperature)."""
        r_with = behavior.bridge_critical_resistance(
            BridgeSite.CELL_NODE_RAIL, 1.8, temperature=25.0)
        r_default = behavior.bridge_critical_resistance(
            BridgeSite.CELL_NODE_RAIL, 1.8)
        assert r_with == r_default
