"""Benchmark: paper Figure 11 -- Venn diagram of failing devices.

The full silicon experiment: ~11k Veqtor4 parts, screen with the 11N
test at standard conditions, re-test survivors at VLV / Vmax / at-speed,
and account the interesting devices per stress-fail set.  Paper: 36
interesting devices -- 27 VLV-only, 3 Vmax-only, 3 at-speed-only,
2 VLV+Vmax, 1 VLV+at-speed, and both remaining regions empty.
"""

import pytest

from repro.analysis.figures import render_venn_comparison
from repro.experiment.classify import StressClassifier
from repro.experiment.population import PopulationGenerator, PopulationSpec
from repro.experiment.venn import PAPER_VENN, VennCounts


@pytest.fixture(scope="module")
def experiment():
    chips = PopulationGenerator(PopulationSpec(n_devices=11000,
                                               seed=1105)).generate()
    return StressClassifier().classify(chips)


@pytest.fixture(scope="module")
def venn(experiment):
    return VennCounts.from_experiment(experiment)


def test_fig11_regeneration(benchmark):
    def run():
        chips = PopulationGenerator(
            PopulationSpec(n_devices=3000, seed=1105)).generate()
        return VennCounts.from_experiment(StressClassifier().classify(chips))
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.total >= 0


class TestFigure11Shape:
    def test_render(self, venn):
        print()
        print(render_venn_comparison(venn, PAPER_VENN))

    def test_total_same_scale_as_paper(self, venn):
        """~36 interesting parts in ~11k (a handful of per-mille)."""
        assert 15 <= venn.total <= 80

    def test_vlv_only_dominates(self, venn):
        """The paper's central experimental observation."""
        assert venn.vlv_only > venn.vmax_only
        assert venn.vlv_only > venn.atspeed_only
        assert venn.vlv_only >= 0.5 * venn.total

    def test_minor_classes_small_but_present(self, venn):
        assert 1 <= venn.vmax_only <= 10
        assert 1 <= venn.atspeed_only <= 10

    def test_overlap_structure_matches_paper(self, venn):
        """Small VLV overlaps exist; Vmax+at-speed and the triple
        region are empty, as in Figure 11."""
        assert venn.vlv_vmax >= 1
        assert venn.vmax_atspeed == 0
        assert venn.all_three == 0

    def test_all_interesting_pass_standard(self, experiment):
        assert all(not r.failed_standard
                   for r in experiment.interesting_devices)

    def test_vlv_escape_rate_order_of_magnitude_over_vmax(self, experiment):
        """The experimental counterpart of Table 1's ~9x DPM gap."""
        vlv = experiment.escape_dpm("VLV")
        vmax = max(experiment.escape_dpm("Vmax"), 1e-9)
        assert vlv / vmax > 3.0
