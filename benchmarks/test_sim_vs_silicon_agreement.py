"""Benchmark: Section 5's headline -- simulation matches silicon.

"The other highlight of this investigation is that there is a clear
matching between the simulation and the experimental results ... the
Defect Coverage and DPM Estimator has shown a difference of ~9X in DPM
level between VLV and Vmax testing, which also can be observed from the
experimental data from the Venn diagram."

The bench runs both worlds -- the estimator (IFA campaign + Williams-
Brown) and the Monte-Carlo lot -- and checks they agree on ordering and
on the order of magnitude of the VLV/Vmax gap.
"""

import pytest

from repro.core.flow import MemoryTestFlow
from repro.experiment.classify import StressClassifier
from repro.experiment.population import PopulationGenerator, PopulationSpec
from repro.memory.geometry import VEQTOR4_INSTANCE


@pytest.fixture(scope="module")
def estimator_report():
    return MemoryTestFlow(VEQTOR4_INSTANCE, n_sites=4000).run().bridge_report


@pytest.fixture(scope="module")
def experiment():
    chips = PopulationGenerator(PopulationSpec(n_devices=11000,
                                               seed=1105)).generate()
    return StressClassifier().classify(chips)


def test_agreement_regeneration(benchmark):
    def both_worlds():
        report = MemoryTestFlow(VEQTOR4_INSTANCE,
                                n_sites=1000).run().bridge_report
        chips = PopulationGenerator(
            PopulationSpec(n_devices=2000, seed=1105)).generate()
        exp = StressClassifier().classify(chips)
        return report, exp
    report, exp = benchmark.pedantic(both_worlds, rounds=1, iterations=1)
    assert report.best_condition().condition == "VLV"


class TestAgreementShape:
    def test_print_comparison(self, estimator_report, experiment):
        est_ratio = estimator_report.dpm_ratio("Vmax", "VLV")
        vlv = experiment.escape_dpm("VLV")
        vmax = max(experiment.escape_dpm("Vmax"), 1e-9)
        print()
        print(f"estimator DPM ratio Vmax/VLV : {est_ratio:6.1f}x "
              "(paper: 9.3x)")
        print(f"population escape ratio      : {vlv / vmax:6.1f}x "
              "(paper Venn: 30/5 = 6x)")

    def test_both_rank_vlv_first(self, estimator_report, experiment):
        assert estimator_report.best_condition().condition == "VLV"
        assert experiment.escape_dpm("VLV") == max(
            experiment.escape_dpm(c) for c in ("VLV", "Vmax", "at-speed"))

    def test_gap_order_of_magnitude_in_both(self, estimator_report,
                                            experiment):
        est_ratio = estimator_report.dpm_ratio("Vmax", "VLV")
        pop_ratio = (experiment.escape_dpm("VLV")
                     / max(experiment.escape_dpm("Vmax"), 1e-9))
        assert 4.0 < est_ratio < 20.0
        assert 3.0 < pop_ratio < 20.0

    def test_ratios_agree_within_factor_three(self, estimator_report,
                                              experiment):
        """'Clear matching' -- the two independent numbers land within a
        small factor of each other (the paper: 9.3x vs ~9x)."""
        est_ratio = estimator_report.dpm_ratio("Vmax", "VLV")
        pop_ratio = (experiment.escape_dpm("VLV")
                     / max(experiment.escape_dpm("Vmax"), 1e-9))
        assert 1 / 3 < est_ratio / pop_ratio < 3.0
