"""Benchmark: paper Figure 9 -- shmoo of Chip-3 (pure timing failure).

"Irrespective of the supply voltage the device starts passing after a
particular frequency (fail @ 16ns, pass @ 17ns clock period and
above)."  A wire-RC-dominated resistive open: the added delay does not
scale with supply, so the shmoo boundary is a vertical line.
"""

import numpy as np
import pytest

from repro.defects.models import OpenSite, open_defect

#: Chip-3's reconstructed defect: a 3 Mohm bit-line-segment open whose
#: R*C (12 ns) plus the 4 ns segment path puts the boundary at 16 ns.
CHIP3_DEFECT = open_defect(OpenSite.BITLINE_SEGMENT, 3e6, cell=21)

VOLTS = np.linspace(1.4, 2.2, 9)
PERIODS = np.linspace(10e-9, 30e-9, 41)   # 0.5 ns resolution


@pytest.fixture(scope="module")
def plot(shmoo_runner, small_sram):
    return shmoo_runner.run(small_sram, [CHIP3_DEFECT], VOLTS, PERIODS,
                            "Figure 9: Chip-3")


def test_fig9_regeneration(benchmark, shmoo_runner, small_sram):
    result = benchmark(shmoo_runner.run, small_sram, [CHIP3_DEFECT],
                       VOLTS[::2], PERIODS[::4])
    assert (~result.passed).any()


class TestFigure9Shape:
    def test_render(self, plot):
        print()
        print(plot.render())

    def test_boundary_vertical(self, plot):
        assert plot.boundary_is_vertical()

    def test_fail_at_16ns_pass_at_17ns(self, plot):
        """The paper's exact numbers, at every plotted voltage."""
        for v in VOLTS:
            assert not plot.passes_at(float(v), 16e-9), v
            assert plot.passes_at(float(v), 17e-9), v

    def test_passes_standard_and_vlv(self, plot, conditions, shmoo_runner,
                                     small_sram):
        """At the 100 ns production period the part passes everywhere --
        an at-speed-only escape."""
        from repro.tester.shmoo import default_period_axis, default_voltage_axis
        wide = shmoo_runner.run(small_sram, [CHIP3_DEFECT],
                                default_voltage_axis(),
                                default_period_axis())
        for name in ("VLV", "Vmin", "Vnom", "Vmax"):
            cond = conditions[name]
            assert wide.passes_at(cond.vdd, cond.period), name

    def test_fails_atspeed_condition(self, plot, conditions):
        atspeed = conditions["at-speed"]
        assert not plot.passes_at(atspeed.vdd, atspeed.period)
