"""Benchmark: paper Figure 4 -- shmoo of Chip-1 (fails at 1.0 V/100 ns).

Chip-1 passes the complete standard suite (Vmin/Vnom/Vmax @ 100 ns) and
is exposed *only* by VLV: a resistive bridge acting as a voltage divider
becomes a stuck-at-1 below ~1.2 V.  The bitmap evidence (three failing
march elements, same cell, always reading '0') is reproduced by the
integration tests; here we regenerate the shmoo and its fail boundary.
"""

import pytest

from repro.defects.models import BridgeSite, bridge
from repro.march.library import TEST_11N
from repro.stress import StressCondition
from repro.tester.shmoo import default_period_axis, default_voltage_axis

#: Chip-1's reconstructed defect: a ~240 kohm storage-node-to-VDD bridge,
#: chosen so the fail boundary sits near the paper's ~1.2 V.
CHIP1_DEFECT = bridge(BridgeSite.CELL_NODE_RAIL, 240e3, polarity=1, cell=13)


@pytest.fixture(scope="module")
def plot(shmoo_runner, small_sram):
    return shmoo_runner.run(small_sram, [CHIP1_DEFECT],
                            default_voltage_axis(),
                            default_period_axis(), "Figure 4: Chip-1")


def test_fig4_regeneration(benchmark, shmoo_runner, small_sram):
    result = benchmark(
        shmoo_runner.run, small_sram, [CHIP1_DEFECT],
        default_voltage_axis(steps=8), default_period_axis(steps=12))
    assert (~result.passed).any()


class TestFigure4Shape:
    def test_render(self, plot):
        print()
        print(plot.render())

    def test_fails_vlv_at_100ns(self, plot):
        assert not plot.passes_at(1.0, 100e-9)

    def test_passes_standard_suite(self, plot, conditions):
        for name in ("Vmin", "Vnom", "Vmax"):
            cond = conditions[name]
            assert plot.passes_at(cond.vdd, cond.period), name

    def test_fail_boundary_near_1v2(self, plot):
        """Paper: 'not sensitive enough at higher voltages (>1.2V)'."""
        v_min = plot.min_passing_voltage(100e-9)
        assert 1.1 <= v_min <= 1.5

    def test_voltage_fail_region_frequency_independent(self, plot):
        """Below the critical voltage the part fails at every period."""
        for period in (20e-9, 50e-9, 100e-9):
            assert not plot.passes_at(1.0, period)

    def test_would_be_shipped_without_vlv(self, tester, small_sram,
                                          conditions):
        """The DPM argument in one assertion: the conventional flow
        passes this part."""
        standard = [conditions[n] for n in ("Vmin", "Vnom", "Vmax")]
        results = [tester.test_device(small_sram, [CHIP1_DEFECT], TEST_11N,
                                      c) for c in standard]
        assert all(r.passed for r in results)
        vlv = tester.test_device(small_sram, [CHIP1_DEFECT], TEST_11N,
                                 conditions["VLV"])
        assert not vlv.passed
